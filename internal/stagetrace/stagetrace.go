// Package stagetrace decomposes a request's end-to-end latency into
// named stages and remembers where the time went.
//
// The timer paper argues from per-operation cost decomposition — start,
// stop, per-tick bookkeeping — and the daemon around the wheel needs
// the same discipline: when an acked timer fires 40ms late, "40ms" is
// not an explanation. A Timeline is the explanation: a bounded list of
// (stage, duration) pairs whose durations sum exactly to the recorded
// total, stamped with a wall-clock start so timelines from different
// processes (primary and standby, client and daemon) can be laid on a
// common axis.
//
// A Recorder aggregates every stage of every timeline into per-stage
// hdr histograms (the /metrics view: distributions, not averages) and
// keeps two bounded exemplar rings in the flight-recorder style: the
// most recent timelines, and the slowest ones over a threshold, both
// dumpable as JSONL for offline analysis with cmd/twtrace. Recording
// is mutex-guarded struct stores into preallocated rings plus atomic
// histogram increments, allocation-free once a (kind, stage) pair's
// histogram exists (the facility's own zero-alloc hot path is
// untouched — it has its own flight recorder).
package stagetrace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"timingwheels/internal/hdr"
)

// MaxStages bounds the stages one timeline can hold. Fixed so Timeline
// is a flat value — rings of them never allocate per record.
const MaxStages = 8

// Stage is one named segment of a timeline.
type Stage struct {
	// Name identifies the segment (e.g. "decode", "commit", "push").
	Name string
	// NS is the segment's duration in nanoseconds.
	NS int64
}

// Timeline is one request's (or one timer fire's) latency decomposition.
type Timeline struct {
	// Seq is the recorder-assigned sequence number; gaps in a dump mean
	// the ring wrapped.
	Seq uint64
	// Trace is the request's correlation ID (X-Twd-Trace), threaded
	// from the client through admission to the eventual fire.
	Trace string
	// Kind groups timelines into histogram families: "admit" for the
	// request path, "fire" for the expiry path.
	Kind string
	// ID is the durable timer ID (0 for batch admissions, where Count
	// carries the batch size).
	ID uint64
	// Count is the number of timers the timeline covers.
	Count int
	// StartNS is the wall-clock Unix nanosecond of the first boundary,
	// for cross-process correlation.
	StartNS int64
	// TotalNS is the sum of the stage durations — maintained as an
	// invariant, so a dump is self-checking.
	TotalNS int64
	// NStages is how many of Stages are populated.
	NStages int
	// Stages are the segments in causal order.
	Stages [MaxStages]Stage
}

// Add appends a stage, keeping TotalNS equal to the stage sum.
// Negative durations are clamped to zero (wall-clock deadlines can sit
// in the future of a fire observed through a coarse tick). Appends past
// MaxStages fold into the last stage so the sum invariant survives.
func (tl *Timeline) Add(name string, ns int64) {
	if ns < 0 {
		ns = 0
	}
	if tl.NStages >= MaxStages {
		tl.Stages[MaxStages-1].NS += ns
		tl.TotalNS += ns
		return
	}
	tl.Stages[tl.NStages] = Stage{Name: name, NS: ns}
	tl.NStages++
	tl.TotalNS += ns
}

// AppendJSON renders the timeline as one JSON object (no newline).
func (tl *Timeline) AppendJSON(b []byte) []byte {
	b = fmt.Appendf(b, `{"seq":%d,"trace":%q,"kind":%q,"id":%d,"count":%d,"start_unix_ns":%d,"total_ns":%d,"stages":[`,
		tl.Seq, tl.Trace, tl.Kind, tl.ID, tl.Count, tl.StartNS, tl.TotalNS)
	for i := 0; i < tl.NStages; i++ {
		if i > 0 {
			b = append(b, ',')
		}
		b = fmt.Appendf(b, `{"stage":%q,"ns":%d}`, tl.Stages[i].Name, tl.Stages[i].NS)
	}
	return append(b, ']', '}')
}

// jsonTimeline mirrors the wire shape for decoding.
type jsonTimeline struct {
	Seq     uint64 `json:"seq"`
	Trace   string `json:"trace"`
	Kind    string `json:"kind"`
	ID      uint64 `json:"id"`
	Count   int    `json:"count"`
	StartNS int64  `json:"start_unix_ns"`
	TotalNS int64  `json:"total_ns"`
	Stages  []struct {
		Stage string `json:"stage"`
		NS    int64  `json:"ns"`
	} `json:"stages"`
}

// Parse decodes one JSONL line produced by AppendJSON (or Dump). Extra
// stages beyond MaxStages are folded into the last slot, mirroring Add.
func Parse(line []byte) (Timeline, error) {
	var j jsonTimeline
	if err := json.Unmarshal(line, &j); err != nil {
		return Timeline{}, err
	}
	tl := Timeline{
		Seq: j.Seq, Trace: j.Trace, Kind: j.Kind, ID: j.ID,
		Count: j.Count, StartNS: j.StartNS,
	}
	for _, s := range j.Stages {
		tl.Add(s.Stage, s.NS)
	}
	// Trust the sender's total when it disagrees with the stage sum so
	// the analyzer can report the discrepancy rather than mask it.
	tl.TotalNS = j.TotalNS
	return tl, nil
}

// Config sizes a Recorder.
type Config struct {
	// Recent is the capacity of the most-recent-timelines ring
	// (clamped to >= 1).
	Recent int
	// Slow is the capacity of the slow-exemplar ring (clamped >= 1).
	Slow int
	// SlowThreshold is the total latency at or above which a timeline
	// is also copied into the slow ring. Zero keeps every timeline —
	// useful in tests, noisy in production.
	SlowThreshold time.Duration
	// Now supplies timestamps for Begin/Mark spans; nil means time.Now.
	// Durations between marks use the monotonic reading when present.
	Now func() time.Time
}

// Recorder aggregates timelines into per-stage histograms and bounded
// exemplar rings. Safe for concurrent use.
type Recorder struct {
	now    func() time.Time
	slowNS int64

	mu     sync.Mutex
	seq    uint64
	recent []Timeline
	slow   []Timeline
	nSlow  uint64 // total timelines ever admitted to the slow ring

	histMu sync.RWMutex
	hists  map[string]*hdr.Histogram
	// byKind holds the same histogram pointers keyed (kind, stage), so
	// the record path reaches them without building "<kind>_<stage>"
	// key strings — the concatenation was the hot path's only
	// allocation.
	byKind map[string]map[string]*hdr.Histogram
}

// NewRecorder builds a Recorder from cfg.
func NewRecorder(cfg Config) *Recorder {
	if cfg.Recent < 1 {
		cfg.Recent = 1
	}
	if cfg.Slow < 1 {
		cfg.Slow = 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Recorder{
		now:    cfg.Now,
		slowNS: cfg.SlowThreshold.Nanoseconds(),
		recent: make([]Timeline, cfg.Recent),
		slow:   make([]Timeline, cfg.Slow),
		hists:  make(map[string]*hdr.Histogram),
		byKind: make(map[string]map[string]*hdr.Histogram),
	}
}

// Hist returns the histogram for key, creating it on first use. The
// returned pointer is stable for the Recorder's lifetime, so callers
// may capture it once (e.g. in a /metrics closure) and snapshot freely.
func (r *Recorder) Hist(key string) *hdr.Histogram {
	r.histMu.RLock()
	h := r.hists[key]
	r.histMu.RUnlock()
	if h != nil {
		return h
	}
	r.histMu.Lock()
	defer r.histMu.Unlock()
	if h = r.hists[key]; h == nil {
		h = hdr.New()
		r.hists[key] = h
	}
	return h
}

// hist returns the histogram for (kind, stage) without allocating a
// key string, creating it — under its canonical "<kind>_<stage>" name,
// so Hist and the exporter see the same instance — on first use.
func (r *Recorder) hist(kind, stage string) *hdr.Histogram {
	r.histMu.RLock()
	h := r.byKind[kind][stage]
	r.histMu.RUnlock()
	if h != nil {
		return h
	}
	h = r.Hist(kind + "_" + stage)
	r.histMu.Lock()
	m := r.byKind[kind]
	if m == nil {
		m = make(map[string]*hdr.Histogram)
		r.byKind[kind] = m
	}
	m[stage] = h
	r.histMu.Unlock()
	return h
}

// Span marks consecutive stage boundaries against the recorder's clock.
// The zero Span is inert: Mark and Finish on it do nothing, so disabled
// tracing costs one nil/zero check at each call site.
type Span struct {
	r    *Recorder
	tl   Timeline
	last time.Time
}

// Begin opens a span whose first Mark measures from now.
func (r *Recorder) Begin(kind, trace string, id uint64, count int) Span {
	now := r.now()
	return Span{
		r:    r,
		tl:   Timeline{Trace: trace, Kind: kind, ID: id, Count: count, StartNS: now.UnixNano()},
		last: now,
	}
}

// Trace reports the span's correlation ID ("" for the zero Span).
func (s *Span) Trace() string { return s.tl.Trace }

// Total reports the stage sum accumulated so far.
func (s *Span) Total() time.Duration { return time.Duration(s.tl.TotalNS) }

// SetTimer fills in the timeline's timer identity once it is known — a
// batch's size only after decode, its first durable ID only after
// admission assigns IDs.
func (s *Span) SetTimer(id uint64, count int) {
	if s.r == nil {
		return
	}
	s.tl.ID = id
	s.tl.Count = count
}

// Mark closes the current stage at the recorder's clock, naming it.
func (s *Span) Mark(name string) {
	if s.r == nil {
		return
	}
	now := s.r.now()
	s.tl.Add(name, now.Sub(s.last).Nanoseconds())
	s.last = now
}

// Finish seals the span and records its timeline; it reports the
// assigned sequence number (0 for the zero Span).
func (s *Span) Finish() uint64 {
	if s.r == nil {
		return 0
	}
	return s.r.Record(s.tl)
}

// Record admits a fully-built timeline: assigns its Seq, feeds every
// stage into the "<kind>_<stage>" histogram and the total into
// "<kind>_total", and stores it in the recent ring (and the slow ring
// when at or over threshold). It reports the assigned Seq (never 0).
func (r *Recorder) Record(tl Timeline) uint64 {
	for i := 0; i < tl.NStages; i++ {
		r.hist(tl.Kind, tl.Stages[i].Name).Record(tl.Stages[i].NS)
	}
	r.hist(tl.Kind, "total").Record(tl.TotalNS)

	r.mu.Lock()
	r.seq++
	tl.Seq = r.seq
	r.recent[tl.Seq%uint64(len(r.recent))] = tl
	if tl.TotalNS >= r.slowNS {
		r.nSlow++
		r.slow[r.nSlow%uint64(len(r.slow))] = tl
	}
	r.mu.Unlock()
	return tl.Seq
}

// Amend appends a late stage to an already-recorded timeline — the
// long-poll push leg, observed only when a client collects the fire.
// The stage duration is fed into its histogram regardless; the stored
// exemplars are updated only if seq is still resident in a ring (it
// may have been overwritten). It reports whether an exemplar was found.
func (r *Recorder) Amend(seq uint64, name string, ns int64) bool {
	if seq == 0 {
		return false
	}
	if ns < 0 {
		ns = 0
	}
	var kind string
	found := false
	r.mu.Lock()
	if tl := &r.recent[seq%uint64(len(r.recent))]; tl.Seq == seq {
		kind = tl.Kind
		tl.Add(name, ns)
		found = true
	}
	for i := range r.slow {
		if r.slow[i].Seq == seq {
			kind = r.slow[i].Kind
			r.slow[i].Add(name, ns)
			found = true
		}
	}
	r.mu.Unlock()
	if kind == "" {
		kind = "fire" // ring-evicted; the stage distribution still counts
	}
	r.hist(kind, name).Record(ns)
	return found
}

// snapshot copies both rings oldest-first, recent then slow (entries can
// appear in both; consumers dedupe by Seq).
func (r *Recorder) snapshot() []Timeline {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Timeline, 0, len(r.recent)+len(r.slow))
	out = appendRing(out, r.recent, r.seq)
	out = appendRing(out, r.slow, r.nSlow)
	return out
}

// appendRing copies a seq-indexed ring oldest-first: n is the count of
// entries ever written, ring[k%len] holds write k.
func appendRing(out, ring []Timeline, n uint64) []Timeline {
	capacity := uint64(len(ring))
	start := uint64(1)
	if n > capacity {
		start = n - capacity + 1
	}
	for k := start; k <= n; k++ {
		tl := ring[k%capacity]
		if tl.Seq != 0 {
			out = append(out, tl)
		}
	}
	return out
}

// Dump writes both exemplar rings as JSON Lines, one timeline per line:
// the recent ring oldest-first, then the slow ring oldest-first.
// Duplicate Seqs across the two sections are possible by design.
func (r *Recorder) Dump(w io.Writer) error {
	var buf []byte
	for _, tl := range r.snapshot() {
		buf = tl.AppendJSON(buf[:0])
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
