package stagetrace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

// fakeClock is a hand-advanced time source for deterministic spans.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestRecorder(clk *fakeClock, cfg Config) *Recorder {
	if clk != nil {
		cfg.Now = clk.now
	}
	return NewRecorder(cfg)
}

func TestSpanStageSumEqualsTotal(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r := newTestRecorder(clk, Config{Recent: 8, Slow: 4})

	sp := r.Begin("admit", "trace-1", 0, 3)
	clk.advance(10 * time.Microsecond)
	sp.Mark("decode")
	clk.advance(200 * time.Microsecond)
	sp.Mark("append")
	clk.advance(1500 * time.Microsecond)
	sp.Mark("commit")
	clk.advance(30 * time.Microsecond)
	sp.Mark("arm")
	seq := sp.Finish()
	if seq == 0 {
		t.Fatal("Finish returned seq 0 for a live span")
	}

	tls := r.snapshot()
	if len(tls) == 0 {
		t.Fatal("no timelines recorded")
	}
	tl := tls[0]
	if tl.Seq != seq {
		t.Fatalf("Seq = %d, want %d", tl.Seq, seq)
	}
	if tl.NStages != 4 {
		t.Fatalf("NStages = %d, want 4", tl.NStages)
	}
	var sum int64
	for i := 0; i < tl.NStages; i++ {
		sum += tl.Stages[i].NS
	}
	if sum != tl.TotalNS {
		t.Fatalf("stage sum %d != TotalNS %d", sum, tl.TotalNS)
	}
	if want := int64(1740 * time.Microsecond); tl.TotalNS != want {
		t.Fatalf("TotalNS = %d, want %d", tl.TotalNS, want)
	}
	if tl.StartNS != time.Unix(1000, 0).UnixNano() {
		t.Fatalf("StartNS = %d, want %d", tl.StartNS, time.Unix(1000, 0).UnixNano())
	}
	if got := tl.Stages[2]; got.Name != "commit" || got.NS != int64(1500*time.Microsecond) {
		t.Fatalf("stage 2 = %+v, want commit/1.5ms", got)
	}
}

func TestZeroSpanIsInert(t *testing.T) {
	var sp Span
	sp.Mark("decode") // must not panic
	if seq := sp.Finish(); seq != 0 {
		t.Fatalf("zero span Finish = %d, want 0", seq)
	}
}

func TestRecordFeedsHistograms(t *testing.T) {
	r := NewRecorder(Config{Recent: 4, Slow: 4})
	var tl Timeline
	tl.Kind = "fire"
	tl.Add("fire", 1000)
	tl.Add("enqueue", 500)
	r.Record(tl)

	if got := r.Hist("fire_fire").Snapshot(); got.Count != 1 || got.Sum != 1000 {
		t.Fatalf("fire_fire snapshot = count %d sum %d, want 1/1000", got.Count, got.Sum)
	}
	if got := r.Hist("fire_enqueue").Snapshot(); got.Count != 1 || got.Sum != 500 {
		t.Fatalf("fire_enqueue snapshot = count %d sum %d, want 1/500", got.Count, got.Sum)
	}
	if got := r.Hist("fire_total").Snapshot(); got.Count != 1 || got.Sum != 1500 {
		t.Fatalf("fire_total snapshot = count %d sum %d, want 1/1500", got.Count, got.Sum)
	}
}

func TestHistPointerStable(t *testing.T) {
	r := NewRecorder(Config{Recent: 1, Slow: 1})
	h1 := r.Hist("admit_total")
	h2 := r.Hist("admit_total")
	if h1 != h2 {
		t.Fatal("Hist returned different pointers for the same key")
	}
}

func TestSlowRingThreshold(t *testing.T) {
	r := NewRecorder(Config{Recent: 2, Slow: 8, SlowThreshold: time.Millisecond})

	var fast Timeline
	fast.Kind = "admit"
	fast.Add("decode", int64(10*time.Microsecond))
	r.Record(fast)

	var slow Timeline
	slow.Kind = "admit"
	slow.Trace = "slow-1"
	slow.Add("commit", int64(5*time.Millisecond))
	slowSeq := r.Record(slow)

	// Overwrite the recent ring (capacity 2) with fast timelines; the
	// slow exemplar must survive in its own ring.
	for i := 0; i < 4; i++ {
		var f Timeline
		f.Kind = "admit"
		f.Add("decode", 1)
		r.Record(f)
	}

	var foundSlow bool
	for _, tl := range r.snapshot() {
		if tl.Seq == slowSeq {
			foundSlow = true
			if tl.Trace != "slow-1" {
				t.Fatalf("slow exemplar trace = %q, want slow-1", tl.Trace)
			}
		}
	}
	if !foundSlow {
		t.Fatal("slow exemplar evicted despite dedicated ring")
	}
}

func TestAmendAppendsLateStage(t *testing.T) {
	r := NewRecorder(Config{Recent: 8, Slow: 8, SlowThreshold: time.Hour})
	var tl Timeline
	tl.Kind = "fire"
	tl.ID = 42
	tl.Add("fire", 1000)
	tl.Add("enqueue", 200)
	seq := r.Record(tl)

	if !r.Amend(seq, "push", 3000) {
		t.Fatal("Amend did not find resident exemplar")
	}
	var got *Timeline
	for _, cand := range r.snapshot() {
		if cand.Seq == seq {
			c := cand
			got = &c
			break
		}
	}
	if got == nil {
		t.Fatal("amended timeline missing from snapshot")
	}
	if got.NStages != 3 || got.Stages[2].Name != "push" || got.Stages[2].NS != 3000 {
		t.Fatalf("amended stages = %+v (n=%d), want push/3000 appended", got.Stages, got.NStages)
	}
	if got.TotalNS != 4200 {
		t.Fatalf("amended TotalNS = %d, want 4200", got.TotalNS)
	}
	if h := r.Hist("fire_push").Snapshot(); h.Count != 1 || h.Sum != 3000 {
		t.Fatalf("fire_push snapshot = count %d sum %d, want 1/3000", h.Count, h.Sum)
	}

	// Evicted seq: histogram still counts, exemplar not found.
	if r.Amend(seq+1000, "push", 10) {
		t.Fatal("Amend claimed to find a never-recorded seq")
	}
	if h := r.Hist("fire_push").Snapshot(); h.Count != 2 {
		t.Fatalf("fire_push count after evicted amend = %d, want 2", h.Count)
	}
}

func TestAddClampsAndOverflows(t *testing.T) {
	var tl Timeline
	tl.Kind = "fire"
	tl.Add("fire", -50) // clock skew: clamp, don't corrupt the sum
	if tl.Stages[0].NS != 0 || tl.TotalNS != 0 {
		t.Fatalf("negative duration not clamped: %+v", tl)
	}
	for i := 0; i < MaxStages+3; i++ {
		tl.Add(fmt.Sprintf("s%d", i), 10)
	}
	if tl.NStages != MaxStages {
		t.Fatalf("NStages = %d, want %d", tl.NStages, MaxStages)
	}
	var sum int64
	for i := 0; i < tl.NStages; i++ {
		sum += tl.Stages[i].NS
	}
	if sum != tl.TotalNS {
		t.Fatalf("overflowed timeline sum %d != total %d", sum, tl.TotalNS)
	}
}

func TestDumpParsesBackAndRoundTrips(t *testing.T) {
	r := NewRecorder(Config{Recent: 8, Slow: 2, SlowThreshold: time.Hour})
	for i := 0; i < 3; i++ {
		var tl Timeline
		tl.Kind = "admit"
		tl.Trace = fmt.Sprintf("t-%d", i)
		tl.Count = i + 1
		tl.StartNS = int64(1e9 + i)
		tl.Add("decode", int64(i*100))
		tl.Add("commit", int64(i*1000))
		r.Record(tl)
	}

	var buf bytes.Buffer
	if err := r.Dump(&buf); err != nil {
		t.Fatalf("Dump: %v", err)
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	var lastSeq uint64
	for sc.Scan() {
		line := sc.Bytes()
		// Every line must be strict JSON with only known fields.
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		var j struct {
			Seq     uint64 `json:"seq"`
			Trace   string `json:"trace"`
			Kind    string `json:"kind"`
			ID      uint64 `json:"id"`
			Count   int    `json:"count"`
			StartNS int64  `json:"start_unix_ns"`
			TotalNS int64  `json:"total_ns"`
			Stages  []struct {
				Stage string `json:"stage"`
				NS    int64  `json:"ns"`
			} `json:"stages"`
		}
		if err := dec.Decode(&j); err != nil {
			t.Fatalf("line %d not strict JSON: %v\n%s", n, err, line)
		}
		if j.Seq <= lastSeq {
			t.Fatalf("dump not oldest-first: seq %d after %d", j.Seq, lastSeq)
		}
		lastSeq = j.Seq

		tl, err := Parse(line)
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		back := tl.AppendJSON(nil)
		if !bytes.Equal(back, line) {
			t.Fatalf("round trip mismatch:\n in: %s\nout: %s", line, back)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("dumped %d lines, want 3", n)
	}
}

func TestConcurrentRecord(t *testing.T) {
	r := NewRecorder(Config{Recent: 16, Slow: 16})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 250; i++ {
				var tl Timeline
				tl.Kind = "admit"
				tl.Add("decode", int64(i))
				seq := r.Record(tl)
				r.Amend(seq, "push", 1)
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if got := r.Hist("admit_total").Snapshot().Count; got != 1000 {
		t.Fatalf("admit_total count = %d, want 1000", got)
	}
}
