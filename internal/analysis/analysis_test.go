package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestLittleN(t *testing.T) {
	if got := LittleN(0.25, 200); got != 50 {
		t.Fatalf("LittleN=%v", got)
	}
	if got := LittleN(0, 200); got != 0 {
		t.Fatalf("LittleN zero rate=%v", got)
	}
}

func TestPaperInsertCosts(t *testing.T) {
	if got := PaperInsertCostExpFront(30); !approx(got, 22, 1e-9) {
		t.Fatalf("exp front=%v", got)
	}
	if got := PaperInsertCostUniformFront(30); !approx(got, 17, 1e-9) {
		t.Fatalf("uniform front=%v", got)
	}
	if got := PaperInsertCostExpRear(30); !approx(got, 12, 1e-9) {
		t.Fatalf("exp rear=%v", got)
	}
}

func TestResidualBelowFraction(t *testing.T) {
	if got := ResidualBelowFraction("exp"); got != 0.5 {
		t.Fatalf("exp=%v", got)
	}
	if got := ResidualBelowFraction("exponential"); got != 0.5 {
		t.Fatalf("exponential=%v", got)
	}
	if got := ResidualBelowFraction("uniform"); !approx(got, 2.0/3.0, 1e-12) {
		t.Fatalf("uniform=%v", got)
	}
	if got := ResidualBelowFraction("constant"); got != 1 {
		t.Fatalf("constant=%v", got)
	}
	if got := ResidualBelowFraction("weibull"); !math.IsNaN(got) {
		t.Fatalf("unknown family=%v", got)
	}
}

func TestFrontRearComplement(t *testing.T) {
	// Front + rear search costs sum to n + 4 for any family: the two
	// searches split the queue.
	for _, fam := range []string{"exp", "uniform", "constant"} {
		n := 60.0
		if got := FrontSearchCost(fam, n) + RearSearchCost(fam, n); !approx(got, n+4, 1e-9) {
			t.Fatalf("%s: front+rear=%v", fam, got)
		}
	}
	// Constant intervals: rear insertion is O(1) — the paper's example.
	if got := RearSearchCost("constant", 1000); !approx(got, 2, 1e-9) {
		t.Fatalf("constant rear=%v", got)
	}
}

func TestPaperPerTickScheme6(t *testing.T) {
	if got := PaperPerTickScheme6(0, 256); !approx(got, 4, 1e-9) {
		t.Fatalf("empty table=%v", got)
	}
	if got := PaperPerTickScheme6(256, 256); !approx(got, 19, 1e-9) {
		t.Fatalf("full table=%v", got)
	}
	if got := PaperPerTickScheme6(10, 0); !math.IsNaN(got) {
		t.Fatalf("zero table=%v", got)
	}
}

func TestScheme6VsScheme7Model(t *testing.T) {
	// Section 6.2: small T, large M -> Scheme 6 cheaper; large T, small
	// M -> Scheme 7 cheaper.
	c6, c7, m := 3.0, 5.0, 4.0
	shortT, longT := 100.0, 1_000_000.0
	M := 256.0
	if Scheme6WorkPerTimer(c6, shortT, M) >= Scheme7WorkPerTimer(c7, m) {
		t.Fatal("short timers should favour Scheme 6")
	}
	if Scheme6WorkPerTimer(c6, longT, M) <= Scheme7WorkPerTimer(c7, m) {
		t.Fatal("long timers should favour Scheme 7")
	}
	// The crossover is where the per-timer works are equal.
	tc := CrossoverMeanT(c6, c7, m, M)
	if !approx(Scheme6WorkPerTimer(c6, tc, M), Scheme7WorkPerTimer(c7, m), 1e-9) {
		t.Fatalf("crossover %v does not equalize the two models", tc)
	}
	if got := CrossoverMeanT(0, c7, m, M); !math.IsInf(got, 1) {
		t.Fatalf("zero c6 crossover=%v", got)
	}
}

func TestPerUnitTimeModels(t *testing.T) {
	if got := Scheme6PerUnitTime(100, 3, 256); !approx(got, 100*3.0/256, 1e-12) {
		t.Fatalf("scheme6 per-unit=%v", got)
	}
	if got := Scheme7PerUnitTime(100, 5, 4, 1000); !approx(got, 100*5*4/1000.0, 1e-12) {
		t.Fatalf("scheme7 per-unit=%v", got)
	}
	if got := Scheme7PerUnitTime(1, 1, 1, 0); !math.IsNaN(got) {
		t.Fatalf("zero T=%v", got)
	}
}

func TestScanInterrupts(t *testing.T) {
	if got := ScanInterruptsScheme6(1024, 64); !approx(got, 16, 1e-12) {
		t.Fatalf("scheme6 interrupts=%v", got)
	}
	if got := ScanInterruptsScheme7(4); got != 4 {
		t.Fatalf("scheme7 interrupts=%v", got)
	}
}

func TestResidualCDFs(t *testing.T) {
	// Uniform residual CDF boundary values.
	if got := ResidualLifeCDFUniform(0, 10); got != 0 {
		t.Fatalf("F_e(0)=%v", got)
	}
	if got := ResidualLifeCDFUniform(10, 10); got != 1 {
		t.Fatalf("F_e(a)=%v", got)
	}
	if got := ResidualLifeCDFUniform(5, 10); !approx(got, 0.75, 1e-12) {
		t.Fatalf("F_e(a/2)=%v, want 0.75", got)
	}
	// Exponential residual CDF equals the exponential CDF.
	if got := ResidualLifeCDFExp(100, 100); !approx(got, 1-math.Exp(-1), 1e-12) {
		t.Fatalf("F_e(mean)=%v", got)
	}
	if got := ResidualLifeCDFExp(-1, 100); got != 0 {
		t.Fatalf("F_e(-1)=%v", got)
	}
}

func TestHierarchySlots(t *testing.T) {
	h, f := HierarchySlots([]int{60, 60, 24, 100})
	if h != 244 {
		t.Fatalf("hierarchical=%d, want 244", h)
	}
	if f != 8_640_000 {
		t.Fatalf("flat=%d, want 8.64M", f)
	}
}

// TestQuickCDFMonotone: residual CDFs are monotone nondecreasing in x.
func TestQuickCDFMonotone(t *testing.T) {
	check := func(x1, x2 float64) bool {
		x1 = math.Mod(math.Abs(x1), 20)
		x2 = math.Mod(math.Abs(x2), 20)
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		return ResidualLifeCDFUniform(x1, 10) <= ResidualLifeCDFUniform(x2, 10)+1e-12 &&
			ResidualLifeCDFExp(x1, 5) <= ResidualLifeCDFExp(x2, 5)+1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
