package analysis

import "math"

// This file generalizes the section 3.2 insertion-cost analysis to
// arbitrary interval distributions, the computation the paper defers to
// Reeves [4]: at M/G/inf steady state an arriving timer of interval X
// passes the queued timers whose residual life Y is below X, so the
// expected front-search fraction is
//
//	P(Y < X) = E_X[F_e(X)],   F_e(x) = (1/mu) * Integral_0^x S(u) du
//
// where S = 1 - F is the interval survival function and mu its mean.
// FrontPassFraction evaluates that double integral numerically for any
// (S, f) pair; the Dist helpers below package the families used by
// experiment E2.

// Dist bundles the functions the residual-life computation needs.
type Dist struct {
	// Survival is S(x) = P(X > x).
	Survival func(x float64) float64
	// Density is the pdf f(x).
	Density func(x float64) float64
	// Mean is E[X].
	Mean float64
	// Upper bounds the numerical integration (a point beyond which the
	// tail mass is negligible).
	Upper float64
}

// FrontPassFraction numerically evaluates P(Y < X) for the given
// distribution using steps trapezoid panels (steps >= 100 recommended).
// The result is the expected fraction of the queue a front search
// passes; the rear-search fraction is its complement.
func FrontPassFraction(d Dist, steps int) float64 {
	if steps < 10 {
		steps = 10
	}
	h := d.Upper / float64(steps)
	// Cumulative integral of S gives mu*F_e on the same grid.
	cum := make([]float64, steps+1)
	prevS := d.Survival(0)
	for i := 1; i <= steps; i++ {
		x := float64(i) * h
		s := d.Survival(x)
		cum[i] = cum[i-1] + (prevS+s)/2*h
		prevS = s
	}
	// Integrate F_e(x) * f(x) dx by trapezoid on the same grid.
	total := 0.0
	prev := cum[0] / d.Mean * d.Density(0)
	for i := 1; i <= steps; i++ {
		x := float64(i) * h
		cur := cum[i] / d.Mean * d.Density(x)
		total += (prev + cur) / 2 * h
		prev = cur
	}
	// Tail correction: everything beyond Upper counts as passed in full
	// (F_e ~ 1 there); add the remaining density mass.
	total += d.Survival(d.Upper)
	return total
}

// ExpDist returns the exponential family with the given mean.
func ExpDist(mean float64) Dist {
	return Dist{
		Survival: func(x float64) float64 { return math.Exp(-x / mean) },
		Density:  func(x float64) float64 { return math.Exp(-x/mean) / mean },
		Mean:     mean,
		Upper:    mean * 30,
	}
}

// UniformDist returns the Uniform[0, 2*mean] family.
func UniformDist(mean float64) Dist {
	a := 2 * mean
	return Dist{
		Survival: func(x float64) float64 {
			if x <= 0 {
				return 1
			}
			if x >= a {
				return 0
			}
			return 1 - x/a
		},
		Density: func(x float64) float64 {
			if x < 0 || x > a {
				return 0
			}
			return 1 / a
		},
		Mean:  mean,
		Upper: a,
	}
}

// ErlangDist returns the Erlang-k family with the given overall mean.
func ErlangDist(k int, mean float64) Dist {
	if k < 1 {
		k = 1
	}
	lambda := float64(k) / mean // per-stage rate
	fact := 1.0
	return Dist{
		Survival: func(x float64) float64 {
			// S(x) = sum_{i=0}^{k-1} (lambda x)^i e^{-lambda x} / i!
			if x <= 0 {
				return 1
			}
			term := math.Exp(-lambda * x)
			sum := term
			for i := 1; i < k; i++ {
				term *= lambda * x / float64(i)
				sum += term
			}
			return sum
		},
		Density: func(x float64) float64 {
			if x < 0 {
				return 0
			}
			// f(x) = lambda^k x^{k-1} e^{-lambda x} / (k-1)!
			f := math.Pow(lambda*x, float64(k-1)) * lambda * math.Exp(-lambda*x)
			g := fact
			for i := 2; i < k; i++ {
				g *= float64(i)
			}
			return f / g
		},
		Mean:  mean,
		Upper: mean * 30,
	}
}

// HyperExpDist returns the two-branch hyperexponential family.
func HyperExpDist(p1, mean1, mean2 float64) Dist {
	mean := p1*mean1 + (1-p1)*mean2
	upper := 30 * math.Max(mean1, mean2)
	return Dist{
		Survival: func(x float64) float64 {
			return p1*math.Exp(-x/mean1) + (1-p1)*math.Exp(-x/mean2)
		},
		Density: func(x float64) float64 {
			return p1*math.Exp(-x/mean1)/mean1 + (1-p1)*math.Exp(-x/mean2)/mean2
		},
		Mean:  mean,
		Upper: upper,
	}
}
