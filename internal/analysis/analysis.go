// Package analysis collects the closed-form results the paper quotes, so
// experiments can print paper-vs-measured comparisons.
//
// Section 3.2 models the timer module as a queue with infinite servers
// (Figure 3): every outstanding timer is "served" (decremented) every
// tick, so the system is G/G/inf. Little's result gives the average
// number outstanding, and the remaining time of timers seen by a new
// request follows the residual-life density of the timer-interval
// distribution. The paper then quotes (from Reeves [4]) average sorted-
// list insertion costs of 2 + (2/3)n for negative-exponential intervals
// and 2 + (1/2)n for uniform, and 2 + n/3 for exponential when searching
// from the rear.
//
// This package provides both the paper's quoted constants and the
// constants that follow directly from the M/G/inf residual-life argument,
// because they disagree on which distribution gets which constant (see
// ResidualBelowFraction); EXPERIMENTS.md reports the measurement against
// both.
package analysis

import "math"

// LittleN returns the steady-state average number of outstanding timers
// by Little's law: N = lambda * E[T], for arrival rate lambda (timers per
// tick) and mean interval meanT (ticks).
func LittleN(lambda, meanT float64) float64 { return lambda * meanT }

// PaperInsertCostExpFront is the section 3.2 quoted average insertion
// cost for negative-exponential intervals, front search: 2 + (2/3) n.
func PaperInsertCostExpFront(n float64) float64 { return 2 + 2*n/3 }

// PaperInsertCostUniformFront is the section 3.2 quoted average insertion
// cost for uniform intervals, front search: 2 + (1/2) n.
func PaperInsertCostUniformFront(n float64) float64 { return 2 + n/2 }

// PaperInsertCostExpRear is the section 3.2 quoted average insertion cost
// for negative-exponential intervals searching from the rear: 2 + n/3.
func PaperInsertCostExpRear(n float64) float64 { return 2 + n/3 }

// ResidualBelowFraction returns P(Y < X) where X is a fresh timer
// interval and Y is the residual life of an interval already in the
// queue, for the named distribution family. This is the expected fraction
// of the queue a front search must pass.
//
// For M/G/inf at stationarity the remaining times of timers in the queue
// are i.i.d. with the equilibrium (residual-life) density
// f_e(y) = (1-F(y))/E[X]:
//
//   - Exponential: the residual of an exponential is the same
//     exponential (memorylessness), so P(Y < X) = 1/2 exactly.
//   - Uniform[0,a]: F_e(x) = (2ax - x^2)/a^2, and E_X[F_e(X)] = 2/3.
//   - Constant c: Y is uniform on [0,c], so P(Y < X) = P(Y < c) = 1.
//     (Every queued timer has less remaining time than a fresh timer:
//     fresh timers always insert at the rear.)
//
// Note the paper's bullet list attaches 2/3 to the exponential and 1/2 to
// the uniform distribution — the reverse of this derivation. Experiment
// E2 measures the truth; the measured slopes match the residual-life
// derivation (exp ~ n/2, uniform ~ 2n/3), so the paper's two constants
// appear to be swapped between the distributions, while its structural
// claims (cost linear in n; rear search complements front search;
// constant intervals make rear insertion O(1)) all hold.
func ResidualBelowFraction(family string) float64 {
	switch family {
	case "exp", "exponential":
		return 0.5
	case "uniform":
		return 2.0 / 3.0
	case "constant":
		return 1.0
	default:
		return math.NaN()
	}
}

// FrontSearchCost returns the residual-life-derived average front-search
// insertion cost 2 + P(Y<X)*n for the named distribution family.
func FrontSearchCost(family string, n float64) float64 {
	return 2 + ResidualBelowFraction(family)*n
}

// RearSearchCost returns the residual-life-derived average rear-search
// insertion cost 2 + (1-P(Y<X))*n for the named distribution family.
func RearSearchCost(family string, n float64) float64 {
	return 2 + (1-ResidualBelowFraction(family))*n
}

// PaperPerTickScheme6 is the section 7 measured VAX result: the average
// per-tick cost of Scheme 6 in cheap instructions, 4 + 15*n/TableSize.
func PaperPerTickScheme6(n, tableSize float64) float64 {
	if tableSize <= 0 {
		return math.NaN()
	}
	return 4 + 15*n/tableSize
}

// Scheme6WorkPerTimer is the section 6.2 model of total bookkeeping work
// over one timer's lifetime under Scheme 6: c6 * T / M, where T is the
// mean timer interval and M the number of slots (the timer is decremented
// T/M times).
func Scheme6WorkPerTimer(c6, meanT, slots float64) float64 {
	if slots <= 0 {
		return math.NaN()
	}
	return c6 * meanT / slots
}

// Scheme7WorkPerTimer is the section 6.2 upper bound on per-timer
// bookkeeping work under Scheme 7: c7 * m for m hierarchy levels.
func Scheme7WorkPerTimer(c7, levels float64) float64 { return c7 * levels }

// Scheme6PerUnitTime is the section 6.2 average bookkeeping cost per unit
// time for n outstanding timers under Scheme 6: n * c6 / M.
func Scheme6PerUnitTime(n, c6, slots float64) float64 {
	if slots <= 0 {
		return math.NaN()
	}
	return n * c6 / slots
}

// Scheme7PerUnitTime is the section 6.2 average bookkeeping cost per unit
// time for n outstanding timers under Scheme 7: n * c7 * m / T, where T
// is the mean interval (each timer does at most m migrations over a
// lifetime of T ticks). The paper prints the denominator as W/M in two
// places; the derivation in the text ("if a timer lives for T units ...")
// fixes the per-lifetime bound at c7*m, giving n*c7*m/T per unit time.
func Scheme7PerUnitTime(n, c7, levels, meanT float64) float64 {
	if meanT <= 0 {
		return math.NaN()
	}
	return n * c7 * levels / meanT
}

// CrossoverMeanT solves Scheme6PerUnitTime == Scheme7PerUnitTime for the
// mean interval T: Scheme 7 does less per-tick bookkeeping than Scheme 6
// once T exceeds c7*m*M/c6. Below it, the flat hashed wheel wins both
// per-tick work and START_TIMER latency.
func CrossoverMeanT(c6, c7, levels, slots float64) float64 {
	if c6 <= 0 {
		return math.Inf(1)
	}
	return c7 * levels * slots / c6
}

// ScanInterruptsScheme6 is the Appendix A host-interrupt count for a
// Scheme 6 hardware scan chip: a timer living T ticks in an M-slot table
// causes about T/M host interrupts (one per cursor pass over its slot).
func ScanInterruptsScheme6(meanT, slots float64) float64 {
	if slots <= 0 {
		return math.NaN()
	}
	return meanT / slots
}

// ScanInterruptsScheme7 is the Appendix A bound for a Scheme 7 chip: at
// most m interrupts per timer, one per hierarchy level migration plus the
// final expiry.
func ScanInterruptsScheme7(levels float64) float64 { return levels }

// ResidualLifeCDFUniform returns F_e(x) for the residual life of a
// Uniform[0,a] interval: (2ax - x^2)/a^2 clamped to [0,1]. E12 compares
// the measured remaining-time distribution against this curve.
func ResidualLifeCDFUniform(x, a float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= a {
		return 1
	}
	return (2*a*x - x*x) / (a * a)
}

// ResidualLifeCDFExp returns F_e(x) for the residual life of an
// exponential interval with the given mean: 1 - exp(-x/mean) (identical
// to the interval distribution itself, by memorylessness).
func ResidualLifeCDFExp(x, mean float64) float64 {
	if x <= 0 || mean <= 0 {
		return 0
	}
	return 1 - math.Exp(-x/mean)
}

// HierarchySlots returns the total slot count of a radix vector (the
// paper's 100+24+60+60 = 244) and the flat-wheel slot count it replaces
// (the product, 8.64 million).
func HierarchySlots(radices []int) (hierarchical, flat int64) {
	flat = 1
	for _, r := range radices {
		hierarchical += int64(r)
		flat *= int64(r)
	}
	return hierarchical, flat
}
