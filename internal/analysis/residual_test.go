package analysis

import (
	"math"
	"testing"
)

func TestFrontPassFractionMatchesClosedForms(t *testing.T) {
	// Exponential: exactly 1/2 (memorylessness).
	if got := FrontPassFraction(ExpDist(100), 4000); math.Abs(got-0.5) > 0.003 {
		t.Fatalf("exp fraction %v, want 0.5", got)
	}
	// Uniform: exactly 2/3.
	if got := FrontPassFraction(UniformDist(100), 4000); math.Abs(got-2.0/3) > 0.003 {
		t.Fatalf("uniform fraction %v, want 2/3", got)
	}
	// Erlang-1 is exponential.
	if got := FrontPassFraction(ErlangDist(1, 100), 4000); math.Abs(got-0.5) > 0.003 {
		t.Fatalf("erlang-1 fraction %v, want 0.5", got)
	}
}

func TestFrontPassFractionOrdering(t *testing.T) {
	// Less variable intervals push the insertion point toward the rear
	// (fraction up, toward constant's 1.0); more variable toward the
	// front (fraction down).
	exp := FrontPassFraction(ExpDist(100), 4000)
	erl2 := FrontPassFraction(ErlangDist(2, 100), 4000)
	erl8 := FrontPassFraction(ErlangDist(8, 100), 4000)
	hyper := FrontPassFraction(HyperExpDist(0.9, 20, 820), 4000)
	if !(hyper < exp && exp < erl2 && erl2 < erl8) {
		t.Fatalf("ordering violated: hyper=%.3f exp=%.3f erl2=%.3f erl8=%.3f",
			hyper, exp, erl2, erl8)
	}
	if erl8 > 1 || hyper < 0 {
		t.Fatalf("fractions out of range: erl8=%v hyper=%v", erl8, hyper)
	}
}

func TestDistFamiliesSane(t *testing.T) {
	for name, d := range map[string]Dist{
		"exp":      ExpDist(50),
		"uniform":  UniformDist(50),
		"erlang3":  ErlangDist(3, 50),
		"hyperexp": HyperExpDist(0.7, 10, 143.33),
	} {
		if d.Survival(0) < 0.999 {
			t.Errorf("%s: S(0)=%v", name, d.Survival(0))
		}
		if d.Survival(d.Upper) > 0.01 {
			t.Errorf("%s: S(upper)=%v not negligible", name, d.Survival(d.Upper))
		}
		// Density integrates to ~1 over [0, Upper].
		steps := 4000
		h := d.Upper / float64(steps)
		sum := 0.0
		prev := d.Density(0)
		for i := 1; i <= steps; i++ {
			cur := d.Density(float64(i) * h)
			sum += (prev + cur) / 2 * h
			prev = cur
		}
		if math.Abs(sum-1) > 0.02 {
			t.Errorf("%s: density mass %v", name, sum)
		}
		// Mean checks out numerically via integral of S.
		sumS := 0.0
		prevS := d.Survival(0)
		for i := 1; i <= steps; i++ {
			cur := d.Survival(float64(i) * h)
			sumS += (prevS + cur) / 2 * h
			prevS = cur
		}
		if math.Abs(sumS-d.Mean)/d.Mean > 0.02 {
			t.Errorf("%s: integral of S = %v, mean %v", name, sumS, d.Mean)
		}
	}
}

func TestErlangSurvivalAgainstDirectSum(t *testing.T) {
	d := ErlangDist(4, 200)
	// At the mean, Erlang-4 survival = sum_{i<4} (4)^i e^-4 / i!.
	want := math.Exp(-4) * (1 + 4 + 8 + 32.0/3)
	if got := d.Survival(200); math.Abs(got-want) > 1e-9 {
		t.Fatalf("S(mean)=%v, want %v", got, want)
	}
}
