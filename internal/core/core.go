// Package core defines the timer-module model from Varghese & Lauck,
// "Hashed and Hierarchical Timing Wheels" (SOSP 1987), section 2.
//
// A timer facility has four component routines:
//
//	START_TIMER(Interval, Request_ID, Expiry_Action)
//	STOP_TIMER(Request_ID)
//	PER_TICK_BOOKKEEPING
//	EXPIRY_PROCESSING
//
// Every scheme in this repository implements the Facility interface, which
// is a direct transliteration of that model: StartTimer and StopTimer are
// the client-facing calls, Tick is PER_TICK_BOOKKEEPING, and expiry
// processing happens by invoking the caller-supplied callback.
//
// Facilities in this package operate in virtual time measured in Ticks and
// are not safe for concurrent use; the timer package wraps them with a
// real-time, goroutine-safe runtime.
package core

import (
	"errors"
	"fmt"
)

// Tick is a point in (or span of) virtual time, measured in clock-tick
// units of granularity T (section 2 of the paper). Facilities begin at
// time 0 and advance by exactly one tick per call to Tick.
type Tick int64

// ID identifies one outstanding timer within a facility. IDs are unique
// over the lifetime of a facility and are never reused.
type ID uint64

// Callback is the EXPIRY_PROCESSING action supplied to StartTimer. It runs
// synchronously from within Tick when the timer expires. A callback may
// start or stop other timers on the same facility (re-entrancy is part of
// the conformance suite), but must not call Tick.
type Callback func(id ID)

// Handle is the client's reference to one outstanding timer, returned by
// StartTimer and accepted by StopTimer. Handles embody the paper's
// observation (section 3.2) that if lists are doubly linked and
// START_TIMER stores a pointer to the element, STOP_TIMER can unlink in
// O(1) time. A Handle is owned by the facility that issued it.
type Handle interface {
	// TimerID reports the identity of the timer this handle refers to.
	TimerID() ID
}

// Facility is the four-routine timer module model. Implementations are
// single-threaded and virtual-timed.
type Facility interface {
	// Name reports the scheme's short name, e.g. "scheme6".
	Name() string

	// StartTimer starts a timer that expires after interval ticks: a timer
	// started at time t with interval d expires during the Tick call that
	// moves time to t+d. The returned handle allows O(1) cancellation.
	//
	// StartTimer fails with ErrNonPositiveInterval if interval < 1, and
	// with ErrIntervalOutOfRange if the scheme cannot represent the
	// interval (e.g. Scheme 4 beyond MaxInterval).
	StartTimer(interval Tick, cb Callback) (Handle, error)

	// StopTimer cancels an outstanding timer. It fails with
	// ErrTimerNotPending if the timer already expired or was already
	// stopped, and with ErrForeignHandle if the handle was issued by a
	// different facility or scheme.
	StopTimer(h Handle) error

	// Tick performs PER_TICK_BOOKKEEPING: it advances the current time by
	// one tick and fires every timer that expires at the new time,
	// invoking callbacks synchronously. It returns the number of timers
	// that expired.
	Tick() int

	// Now reports the current virtual time. A new facility starts at 0.
	Now() Tick

	// Len reports the number of outstanding (started, not yet fired or
	// stopped) timers.
	Len() int
}

// PayloadCallback is the zero-allocation variant of Callback: expiry
// processing invokes it with the timer's ID and the opaque payload the
// caller stored at start time. Because the payload rides with the timer
// entry, a host runtime needs no per-timer capturing closure to find its
// own record — one shared PayloadCallback serves every timer.
type PayloadCallback func(id ID, payload any)

// PayloadStarter is an optional fast-path extension of Facility for
// hosts (like the concurrent runtime) that schedule at high rates.
//
// StartTimerPayload behaves like StartTimer but stores payload with the
// entry and fires cb(id, payload) instead of a per-timer closure. It
// also opts the entry into the facility's free-list: the entry object is
// recycled as soon as the timer fires or is stopped, so steady-state
// scheduling allocates nothing.
//
// Recycling means the returned Handle may later be reissued for a
// different timer. Callers MUST therefore cancel through StopTimerID
// (IDStopper), remembering the ID the handle reported at start time;
// the never-reused ID is the ABA guard that makes a stale handle inert.
// Plain StopTimer on a payload-started handle is NOT safe once the
// timer has fired or been stopped.
type PayloadStarter interface {
	StartTimerPayload(interval Tick, payload any, cb PayloadCallback) (Handle, error)
}

// IDStopper is the cancellation half of the PayloadStarter fast path:
// StopTimerID cancels the timer only if h still represents the timer
// identified by id. If the underlying entry has been recycled and
// reissued (so h now carries a different ID), or the timer already
// fired or was stopped, it fails with ErrTimerNotPending — a stale
// handle can never cancel somebody else's timer.
type IDStopper interface {
	StopTimerID(h Handle, id ID) error
}

// Resetter is an optional extension for facilities that can re-arm an
// outstanding timer in place — the "dynamic update" operation of the
// grouped-sorting-queue literature (see PAPERS.md): TCP retransmit
// timers are reset on every ACK, idle timers on every packet, so on
// reset-dominated workloads update-in-place beats stop+start.
//
// ResetTimer re-arms the timer h refers to so it expires interval ticks
// from now, keeping the same entry and the same ID — the handle remains
// valid and no free-list churn occurs. It fails with ErrTimerNotPending
// (and has no side effects) if the timer already fired or was stopped,
// with ErrNonPositiveInterval if interval < 1, and with
// ErrForeignHandle for a handle issued elsewhere. Schemes without this
// extension are reset by the caller as StopTimer followed by
// StartTimer.
type Resetter interface {
	ResetTimer(h Handle, interval Tick) error
}

// IDResetter is the ABA-guarded variant of Resetter, paired with
// PayloadStarter/IDStopper exactly as StopTimerID is: ResetTimerID
// re-arms in place only if h still represents the timer identified by
// id, so a stale handle into a recycled entry can never re-arm a
// stranger's timer. It fails with ErrTimerNotPending otherwise.
type IDResetter interface {
	ResetTimerID(h Handle, id ID, interval Tick) error
}

// Advancer is implemented by facilities that can skip over several ticks
// more efficiently than calling Tick in a loop.
type Advancer interface {
	// Advance calls Tick n times, returning the total number of expiries.
	Advance(n Tick) int
}

// NextExpirer is implemented by facilities that can report the earliest
// outstanding expiry in O(1) — the property section 3.2 exploits for
// hosts with "hardware support to maintain a single timer": the hardware
// timer is set to the head-of-queue expiry and "interrupts the host only
// when a timer actually expires", instead of on every clock tick.
// Ordered-list and tree facilities implement it; wheels do not (finding
// their minimum requires a scan).
type NextExpirer interface {
	// NextExpiry reports the earliest outstanding expiry tick; ok is
	// false when no timers are outstanding.
	NextExpiry() (when Tick, ok bool)
}

// AdvanceBy advances f by n ticks, using the facility's Advancer fast path
// when available. It returns the total number of timers fired.
func AdvanceBy(f Facility, n Tick) int {
	if a, ok := f.(Advancer); ok {
		return a.Advance(n)
	}
	total := 0
	for i := Tick(0); i < n; i++ {
		total += f.Tick()
	}
	return total
}

// Errors shared by all schemes.
var (
	// ErrNonPositiveInterval reports a StartTimer interval < 1 tick.
	ErrNonPositiveInterval = errors.New("timer: interval must be at least one tick")

	// ErrIntervalOutOfRange reports an interval a bounded scheme cannot
	// store (Scheme 4's MaxInterval, or overflow of the tick type).
	ErrIntervalOutOfRange = errors.New("timer: interval out of range for this scheme")

	// ErrTimerNotPending reports StopTimer on a timer that already fired
	// or was already stopped.
	ErrTimerNotPending = errors.New("timer: timer is not pending")

	// ErrForeignHandle reports a handle passed to a facility other than
	// the one that issued it.
	ErrForeignHandle = errors.New("timer: handle was issued by a different facility")

	// ErrNilCallback reports StartTimer with a nil expiry action.
	ErrNilCallback = errors.New("timer: nil expiry callback")
)

// State is the lifecycle state of a timer entry.
type State uint8

// Timer lifecycle: Pending until it either Fires (expiry processing ran)
// or is Stopped (cancelled before expiry).
const (
	StatePending State = iota
	StateFired
	StateStopped
)

// String returns the lower-case state name.
func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateFired:
		return "fired"
	case StateStopped:
		return "stopped"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// CheckInterval validates a StartTimer interval and callback, returning
// the error every scheme reports for bad arguments.
func CheckInterval(interval Tick, cb Callback) error {
	if cb == nil {
		return ErrNilCallback
	}
	if interval < 1 {
		return ErrNonPositiveInterval
	}
	return nil
}
