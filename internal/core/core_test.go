package core

import (
	"errors"
	"testing"
)

func TestCheckInterval(t *testing.T) {
	noop := func(ID) {}
	if err := CheckInterval(1, noop); err != nil {
		t.Fatalf("valid args: %v", err)
	}
	if err := CheckInterval(0, noop); !errors.Is(err, ErrNonPositiveInterval) {
		t.Fatalf("zero interval: %v", err)
	}
	if err := CheckInterval(-1, noop); !errors.Is(err, ErrNonPositiveInterval) {
		t.Fatalf("negative interval: %v", err)
	}
	if err := CheckInterval(1, nil); !errors.Is(err, ErrNilCallback) {
		t.Fatalf("nil callback: %v", err)
	}
	// Nil callback is reported before the interval error, matching the
	// precedence every scheme inherits.
	if err := CheckInterval(0, nil); !errors.Is(err, ErrNilCallback) {
		t.Fatalf("nil callback precedence: %v", err)
	}
}

func TestStateString(t *testing.T) {
	cases := map[State]string{
		StatePending: "pending",
		StateFired:   "fired",
		StateStopped: "stopped",
		State(99):    "state(99)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String()=%q, want %q", s, got, want)
		}
	}
}

// fakeFacility counts Tick calls; used to exercise AdvanceBy's fallback.
type fakeFacility struct {
	ticks int
	now   Tick
}

func (f *fakeFacility) Name() string                              { return "fake" }
func (f *fakeFacility) StartTimer(Tick, Callback) (Handle, error) { return nil, nil }
func (f *fakeFacility) StopTimer(Handle) error                    { return nil }
func (f *fakeFacility) Tick() int                                 { f.ticks++; f.now++; return 0 }
func (f *fakeFacility) Now() Tick                                 { return f.now }
func (f *fakeFacility) Len() int                                  { return 0 }

// fakeAdvancer also implements Advancer.
type fakeAdvancer struct {
	fakeFacility
	advanced Tick
}

func (f *fakeAdvancer) Advance(n Tick) int { f.advanced += n; f.now += n; return 0 }

func TestAdvanceByFallback(t *testing.T) {
	f := &fakeFacility{}
	AdvanceBy(f, 5)
	if f.ticks != 5 || f.Now() != 5 {
		t.Fatalf("ticks=%d now=%d", f.ticks, f.Now())
	}
}

func TestAdvanceByFastPath(t *testing.T) {
	f := &fakeAdvancer{}
	AdvanceBy(f, 7)
	if f.advanced != 7 || f.ticks != 0 {
		t.Fatalf("advanced=%d ticks=%d", f.advanced, f.ticks)
	}
}
