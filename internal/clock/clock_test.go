package clock

import (
	"math"
	"testing"
	"time"
)

func TestVirtual(t *testing.T) {
	var v Virtual
	if v.Now() != 0 {
		t.Fatal("virtual clock should start at 0")
	}
	if v.Tick() != 1 || v.Now() != 1 {
		t.Fatal("Tick should advance by one")
	}
	if v.Advance(10) != 11 {
		t.Fatal("Advance(10) should reach 11")
	}
	if v.Advance(0) != 11 {
		t.Fatal("Advance(0) should be a no-op")
	}
}

func TestVirtualBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance should panic")
		}
	}()
	var v Virtual
	v.Advance(-1)
}

func TestWallTicksAt(t *testing.T) {
	epoch := time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)
	w := NewWall(epoch, 10*time.Millisecond)
	cases := []struct {
		offset time.Duration
		want   int64
	}{
		{0, 0},
		{9 * time.Millisecond, 0},
		{10 * time.Millisecond, 1},
		{25 * time.Millisecond, 2},
		{1 * time.Second, 100},
		{-1 * time.Second, 0}, // before the epoch clamps to 0
	}
	for _, c := range cases {
		if got := w.TicksAt(epoch.Add(c.offset)); got != c.want {
			t.Errorf("TicksAt(epoch+%v)=%d, want %d", c.offset, got, c.want)
		}
	}
}

func TestWallTimeOfRoundTrip(t *testing.T) {
	epoch := time.Unix(1000, 0)
	w := NewWall(epoch, time.Millisecond)
	for _, tick := range []int64{0, 1, 999, 123456} {
		if got := w.TicksAt(w.TimeOf(tick)); got != tick {
			t.Errorf("round trip tick %d -> %d", tick, got)
		}
	}
}

func TestWallTicksFor(t *testing.T) {
	w := NewWall(time.Unix(0, 0), 10*time.Millisecond)
	cases := []struct {
		d    time.Duration
		want int64
	}{
		{0, 1},                     // never fewer than one tick
		{-time.Second, 1},          // negative clamps
		{time.Nanosecond, 1},       // rounds up
		{10 * time.Millisecond, 1}, // exact
		{11 * time.Millisecond, 2}, // rounds up
		{100 * time.Millisecond, 10},
	}
	for _, c := range cases {
		if got := w.TicksFor(c.d); got != c.want {
			t.Errorf("TicksFor(%v)=%d, want %d", c.d, got, c.want)
		}
	}
	if w.Granularity() != 10*time.Millisecond {
		t.Fatal("Granularity mismatch")
	}
	if !w.Epoch().Equal(time.Unix(0, 0)) {
		t.Fatal("Epoch mismatch")
	}
}

// Regression: the round-up used to be (d + granularity - 1) / granularity,
// which wraps negative for d near MaxInt64 — a ~292-year timer fired on
// the very next tick.
func TestWallTicksForOverflow(t *testing.T) {
	w := NewWall(time.Unix(0, 0), 10*time.Millisecond)
	huge := []time.Duration{
		math.MaxInt64,
		math.MaxInt64 - 1,
		math.MaxInt64 - time.Duration(10*time.Millisecond) + 1,
	}
	for _, d := range huge {
		got := w.TicksFor(d)
		if got <= 1 {
			t.Fatalf("TicksFor(%d) = %d: overflow wrapped a far-future timer to the next tick", d, got)
		}
		if want := int64(d / (10 * time.Millisecond)); got < want {
			t.Fatalf("TicksFor(%d) = %d rounded down below %d", d, got, want)
		}
		if got > MaxTicks {
			t.Fatalf("TicksFor(%d) = %d exceeds MaxTicks", d, got)
		}
	}
	// With 1ns granularity the exact tick count would be MaxInt64; the cap
	// must hold so downstream deadline arithmetic cannot overflow.
	w1 := NewWall(time.Unix(0, 0), time.Nanosecond)
	if got := w1.TicksFor(math.MaxInt64); got != MaxTicks {
		t.Fatalf("TicksFor(MaxInt64) at 1ns granularity = %d, want MaxTicks cap %d", got, MaxTicks)
	}
}

func TestWallInvalidGranularityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero granularity should panic")
		}
	}()
	NewWall(time.Now(), 0)
}

func TestGuardObservesRegression(t *testing.T) {
	epoch := time.Unix(0, 0)
	w := NewWall(epoch, 10*time.Millisecond)
	g := NewGuard(w)

	// Normal forward motion: no regression reported.
	target, back := g.Observe(epoch.Add(30 * time.Millisecond))
	if target != 3 || back != 0 {
		t.Fatalf("forward: target=%d back=%d", target, back)
	}
	// Same tick again: still no regression.
	if _, back = g.Observe(epoch.Add(35 * time.Millisecond)); back != 0 {
		t.Fatalf("hold: back=%d", back)
	}
	// Backward step of 2 ticks: reported once...
	target, back = g.Observe(epoch.Add(10 * time.Millisecond))
	if target != 1 || back != 2 {
		t.Fatalf("regress: target=%d back=%d", target, back)
	}
	// ...and the regressed reading becomes the baseline.
	if _, back = g.Observe(epoch.Add(10 * time.Millisecond)); back != 0 {
		t.Fatalf("post-regress hold: back=%d", back)
	}
	// Recovery past the old high-water mark is plain forward motion.
	target, back = g.Observe(epoch.Add(50 * time.Millisecond))
	if target != 5 || back != 0 {
		t.Fatalf("recovery: target=%d back=%d", target, back)
	}
}
