// Package clock provides tick sources for driving timer facilities: a
// manual virtual clock for simulation and tests, and a real-time adapter
// that converts wall-clock time into tick counts for the production
// runtime.
//
// In the paper's model (section 2) "the timer is often an external
// hardware clock" that invokes PER_TICK_BOOKKEEPING every T units. The
// virtual clock plays that role deterministically; the real-time adapter
// plays it against time.Time, including catch-up after scheduling delays
// (several hardware ticks may have elapsed between invocations).
package clock

import "time"

// Virtual is a manually advanced tick counter. The zero value starts at
// tick 0.
type Virtual struct {
	now int64
}

// Now reports the current tick.
func (v *Virtual) Now() int64 { return v.now }

// Advance moves the clock forward by n ticks (n >= 0) and returns the new
// time.
func (v *Virtual) Advance(n int64) int64 {
	if n < 0 {
		panic("clock: cannot advance backwards")
	}
	v.now += n
	return v.now
}

// Tick advances by one tick and returns the new time.
func (v *Virtual) Tick() int64 { return v.Advance(1) }

// Wall converts wall-clock time into a monotonically increasing tick
// count with a fixed granularity. It answers "how many whole ticks have
// elapsed since the epoch?", which the runtime uses to decide how many
// PER_TICK_BOOKKEEPING calls are due.
type Wall struct {
	epoch       time.Time
	granularity time.Duration
}

// NewWall returns a wall clock whose tick 0 begins at epoch and whose
// ticks are granularity long. Granularity must be positive.
func NewWall(epoch time.Time, granularity time.Duration) *Wall {
	if granularity <= 0 {
		panic("clock: granularity must be positive")
	}
	return &Wall{epoch: epoch, granularity: granularity}
}

// Granularity reports the tick length.
func (w *Wall) Granularity() time.Duration { return w.granularity }

// Epoch reports the time of tick 0.
func (w *Wall) Epoch() time.Time { return w.epoch }

// TicksAt reports how many whole ticks have elapsed at time t (0 if t is
// before the epoch).
func (w *Wall) TicksAt(t time.Time) int64 {
	d := t.Sub(w.epoch)
	if d < 0 {
		return 0
	}
	return int64(d / w.granularity)
}

// TimeOf reports the wall time at which the given tick begins.
func (w *Wall) TimeOf(tick int64) time.Time {
	return w.epoch.Add(time.Duration(tick) * w.granularity)
}

// MaxTicks caps TicksFor so tick arithmetic downstream (deadline =
// current tick + interval, interval stretching) cannot overflow int64
// even after the facility has run for years and the caller multiplies
// by small factors.
const MaxTicks = int64(1) << 61

// TicksFor converts a duration to a tick count, rounding up so a timer
// never fires early (a request of 1ns with 1ms granularity waits one full
// tick). The result is at least 1 and at most MaxTicks. The round-up is
// computed by division rather than as (d + granularity - 1) / granularity:
// the addition wraps negative for d near math.MaxInt64, which made a
// ~292-year timer fire on the next tick.
func (w *Wall) TicksFor(d time.Duration) int64 {
	if d <= 0 {
		return 1
	}
	n := int64(d / w.granularity)
	if d%w.granularity != 0 {
		n++ // cannot wrap: n <= MaxInt64/granularity < MaxInt64
	}
	if n < 1 {
		n = 1
	}
	if n > MaxTicks {
		n = MaxTicks
	}
	return n
}

// Guard watches the tick stream derived from a Wall for clock anomalies.
// A well-behaved wall clock yields a non-decreasing tick sequence; an
// NTP step backwards (or a fault-injected regression) breaks that, and
// the facility driver must notice rather than silently stall. Guard is
// not safe for concurrent use: the driver observes under its own lock.
type Guard struct {
	wall *Wall
	last int64
}

// NewGuard returns a Guard over w, starting at tick 0.
func NewGuard(w *Wall) *Guard { return &Guard{wall: w} }

// Observe converts t to a wall tick and compares it with the previous
// observation: target is the tick the facility should catch up to, and
// back is how many ticks the clock regressed since the last call (0 when
// time moved forward or held still). The regression becomes the new
// baseline, so one backward step is reported exactly once.
func (g *Guard) Observe(t time.Time) (target, back int64) {
	target = g.wall.TicksAt(t)
	if target < g.last {
		back = g.last - target
	}
	g.last = target
	return target, back
}
