// Crash-injection harness: replays a deterministic op history, then
// simulates a crash at every byte offset of the on-disk log (torn tail,
// truncated CRC, flipped bits, duplicated frames after an appender
// retry) and asserts that recovery reconstructs exactly the state an
// independently-implemented oracle derives from the surviving frames.
package wal

import (
	"bytes"
	"math/rand"
	"os"
	"testing"
)

// oracle is a from-scratch reimplementation of replay semantics, kept
// deliberately different in structure from State.Apply so a shared bug
// cannot hide: it stores whole records and derives counters with
// if-chains rather than a switch over map mutations.
type oracle struct {
	timers  map[uint64]Record
	leases  map[uint64]int64
	sched   uint64
	fired   uint64
	cancel  uint64
	granted uint64
	expired uint64
	sealed  bool
}

func newOracle() *oracle {
	return &oracle{timers: map[uint64]Record{}, leases: map[uint64]int64{}}
}

func (o *oracle) apply(r Record) {
	o.sealed = r.Op == OpSeal
	if r.Op == OpSchedule {
		if _, ok := o.timers[r.ID]; !ok {
			o.sched++
		}
		o.timers[r.ID] = r
	}
	if r.Op == OpCancel {
		if _, ok := o.timers[r.ID]; ok {
			o.cancel++
			delete(o.timers, r.ID)
		}
	}
	if r.Op == OpFire {
		if _, ok := o.timers[r.ID]; ok {
			o.fired++
			delete(o.timers, r.ID)
		}
	}
	if r.Op == OpReset {
		if prev, ok := o.timers[r.ID]; ok {
			prev.Deadline = r.Deadline
			o.timers[r.ID] = prev
		}
	}
	if r.Op == OpLeaseGrant {
		if _, ok := o.leases[r.ID]; !ok {
			o.granted++
		}
		o.leases[r.ID] = r.Deadline
	}
	if r.Op == OpLeaseRenew {
		if _, ok := o.leases[r.ID]; ok {
			o.leases[r.ID] = r.Deadline
		}
	}
	if r.Op == OpLeaseExpire {
		if _, ok := o.leases[r.ID]; ok {
			o.expired++
			delete(o.leases, r.ID)
		}
	}
}

// diff compares the oracle against a recovered State, returning a
// human-readable mismatch or "".
func (o *oracle) diff(s *State) string {
	if len(s.Timers) != len(o.timers) {
		return "outstanding timer count"
	}
	for id, want := range o.timers {
		got, ok := s.Timers[id]
		if !ok {
			return "missing timer"
		}
		if got.Deadline != want.Deadline || got.Class != want.Class ||
			got.Lease != want.Lease || !bytes.Equal(got.Payload, want.Payload) {
			return "timer fields"
		}
	}
	if len(s.Leases) != len(o.leases) {
		return "live lease count"
	}
	for id, expiry := range o.leases {
		if got, ok := s.Leases[id]; !ok || got.Expiry != expiry {
			return "lease expiry"
		}
	}
	if s.Scheduled != o.sched || s.Fired != o.fired || s.Cancelled != o.cancel {
		return "timer counters"
	}
	if s.LeasesGranted != o.granted || s.LeasesExpired != o.expired {
		return "lease counters"
	}
	if s.Sealed != o.sealed {
		return "sealed flag"
	}
	if s.Scheduled != s.Fired+s.Cancelled+uint64(len(s.Timers)) {
		return "conservation ledger"
	}
	return ""
}

// genHistory builds a deterministic mixed op program. IDs are drawn
// from a small range so cancels, resets, and fires hit live timers
// often and settled ones sometimes (exercising idempotent replay).
func genHistory(seed int64, n int) []Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		id := uint64(rng.Intn(16) + 1)
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			var payload []byte
			if k := rng.Intn(24); k > 0 {
				payload = make([]byte, k)
				rng.Read(payload)
			}
			recs = append(recs, Record{
				Op: OpSchedule, ID: id, Class: uint8(rng.Intn(3)),
				Lease: uint64(rng.Intn(4)), Deadline: rng.Int63n(1 << 40),
				Payload: payload,
			})
		case 4:
			recs = append(recs, Record{Op: OpCancel, ID: id})
		case 5:
			recs = append(recs, Record{Op: OpReset, ID: id, Deadline: rng.Int63n(1 << 40)})
		case 6:
			recs = append(recs, Record{Op: OpFire, ID: id})
		case 7:
			recs = append(recs, Record{Op: OpLeaseGrant, ID: uint64(rng.Intn(4) + 1), Deadline: rng.Int63n(1 << 40)})
		case 8:
			recs = append(recs, Record{Op: OpLeaseRenew, ID: uint64(rng.Intn(4) + 1), Deadline: rng.Int63n(1 << 40)})
		case 9:
			recs = append(recs, Record{Op: OpLeaseExpire, ID: uint64(rng.Intn(4) + 1)})
		}
	}
	return recs
}

// writeHistory encodes recs and returns the raw segment bytes plus the
// byte offset at which each frame ends (boundaries[i] = end of frame i).
func writeHistory(recs []Record) (data []byte, boundaries []int) {
	for _, r := range recs {
		data = appendFrame(data, r)
		boundaries = append(boundaries, len(data))
	}
	return data, boundaries
}

// recoverBytes plants data as an epoch-0 segment in a fresh dir and
// runs Open, returning the result with the log left open.
func recoverBytes(t *testing.T, data []byte, opt Options) (*Log, *RecoverResult) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(walPath(dir, 0), data, 0o644); err != nil {
		t.Fatal(err)
	}
	return mustOpen(t, dir, opt)
}

// TestCrashAtEveryByteOffset is the core harness: for every possible
// crash point in the segment — every byte prefix — recovery must
// reconstruct exactly the oracle's view of the complete frames inside
// the prefix, report torn-tail status correctly, and leave the log
// appendable.
func TestCrashAtEveryByteOffset(t *testing.T) {
	recs := genHistory(6, 120)
	data, boundaries := writeHistory(recs)

	// frameAt[L] = number of complete frames within a prefix of L bytes.
	frameAt := make([]int, len(data)+1)
	{
		next, done := 0, 0
		for l := 0; l <= len(data); l++ {
			for next < len(boundaries) && boundaries[next] <= l {
				done++
				next++
			}
			frameAt[l] = done
		}
	}

	for cut := 0; cut <= len(data); cut++ {
		complete := frameAt[cut]
		o := newOracle()
		for _, r := range recs[:complete] {
			o.apply(r)
		}
		l, res := recoverBytes(t, data[:cut], Options{})
		if msg := o.diff(res.State); msg != "" {
			t.Fatalf("cut=%d (%d frames): recovered state differs from oracle: %s", cut, complete, msg)
		}
		atBoundary := cut == 0 || (complete > 0 && boundaries[complete-1] == cut)
		if res.Torn == atBoundary {
			t.Fatalf("cut=%d: Torn=%v, at frame boundary=%v", cut, res.Torn, atBoundary)
		}
		if res.LogRecords != uint64(complete) {
			t.Fatalf("cut=%d: replayed %d records, want %d", cut, res.LogRecords, complete)
		}
		// The truncated log must accept appends at a valid boundary.
		if _, err := l.Append(Record{Op: OpSchedule, ID: 999, Deadline: 1}); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("cut=%d: close: %v", cut, err)
		}
	}
}

// TestCrashBitFlipInLastFrame corrupts every byte of the final frame
// (one bit flip each) and asserts the reader drops exactly that frame:
// the recovered state equals the oracle over all prior records.
func TestCrashBitFlipInLastFrame(t *testing.T) {
	recs := genHistory(7, 40)
	data, boundaries := writeHistory(recs)
	lastStart := 0
	if len(boundaries) > 1 {
		lastStart = boundaries[len(boundaries)-2]
	}
	o := newOracle()
	for _, r := range recs[:len(recs)-1] {
		o.apply(r)
	}
	for pos := lastStart; pos < len(data); pos++ {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 1 << uint(pos%8)
		_, res := recoverBytes(t, mut, Options{})
		if !res.Torn {
			t.Fatalf("bit flip at %d not detected as torn", pos)
		}
		if msg := o.diff(res.State); msg != "" {
			t.Fatalf("bit flip at %d: recovered state differs from oracle: %s", pos, msg)
		}
	}
}

// TestCrashRetryDuplicatesFrame models an appender that crashed with a
// half-written frame and, after restart, re-appended the same record:
// recovery truncates the torn half, the retry lands cleanly, and the
// final state is byte-for-byte the clean history's state.
func TestCrashRetryDuplicatesFrame(t *testing.T) {
	recs := genHistory(8, 60)
	data, boundaries := writeHistory(recs)
	last := recs[len(recs)-1]
	lastStart := boundaries[len(boundaries)-2]

	// Crash points inside the last frame, inclusive of "wrote nothing"
	// and exclusive of "wrote everything" (no retry needed there).
	for _, cut := range []int{lastStart, lastStart + 3, lastStart + frameHeaderSize, len(data) - 1} {
		l, res := recoverBytes(t, data[:cut], Options{})
		if res.LogRecords != uint64(len(recs)-1) {
			t.Fatalf("cut=%d: replayed %d, want %d", cut, res.LogRecords, len(recs)-1)
		}
		if _, err := l.Append(last); err != nil {
			t.Fatalf("cut=%d: retry append: %v", cut, err)
		}
		dir := l.dir
		l.Close()

		_, res2 := mustOpen(t, dir, Options{})
		o := newOracle()
		for _, r := range recs {
			o.apply(r)
		}
		if msg := o.diff(res2.State); msg != "" {
			t.Fatalf("cut=%d: retried history differs from clean history: %s", cut, msg)
		}
	}

	// A retry that duplicates an already-complete frame (the ambiguous
	// "did my write land?" case) must be absorbed by idempotent replay.
	dup := append(append([]byte(nil), data...), data[lastStart:]...)
	_, res := recoverBytes(t, dup, Options{})
	o := newOracle()
	for _, r := range recs {
		o.apply(r)
	}
	o.apply(last) // oracle is itself idempotent; applying twice is the point
	if msg := o.diff(res.State); msg != "" {
		t.Fatalf("duplicated frame: recovered state differs from oracle: %s", msg)
	}
	if res.LogRecords != uint64(len(recs)+1) {
		t.Fatalf("duplicated frame: replayed %d, want %d", res.LogRecords, len(recs)+1)
	}
}

// TestCrashTornSnapshotFallsBack: a snapshot seed with a torn tail
// still recovers its valid prefix, and the epoch's segment replays on
// top of it.
func TestCrashTornSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	seed := []Record{
		{Op: OpSchedule, ID: 1, Deadline: 100},
		{Op: OpSchedule, ID: 2, Deadline: 200},
	}
	var snap []byte
	for _, r := range seed {
		snap = appendFrame(snap, r)
	}
	// Tear the snapshot's second frame.
	if err := os.WriteFile(snapPath(dir, 3), snap[:len(snap)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	var seg []byte
	seg = appendFrame(seg, Record{Op: OpSchedule, ID: 9, Deadline: 900})
	if err := os.WriteFile(walPath(dir, 3), seg, 0o644); err != nil {
		t.Fatal(err)
	}

	l, res := mustOpen(t, dir, Options{})
	defer l.Close()
	if !res.Torn {
		t.Fatal("torn snapshot not reported")
	}
	if res.Epoch != 3 || res.SnapshotRecords != 1 || res.LogRecords != 1 {
		t.Fatalf("recovery: %+v", res)
	}
	if res.State.Outstanding() != 2 {
		t.Fatalf("outstanding = %d, want 2 (timer 1 from seed, timer 9 from segment)", res.State.Outstanding())
	}
}
