package wal

// Fault-injection tests for the write-path repair and failed-log
// discipline: the log must survive a short write (truncate back to the
// last good frame so later appends stay readable) and must refuse all
// work after a failed fsync (the kernel may have dropped the dirty
// pages; "durable" can no longer be trusted).

import (
	"errors"
	"os"
	"testing"
)

// faultFile wraps the real segment file and injects one short write
// and/or a persistent fsync error.
type faultFile struct {
	*os.File
	shortNext  int // next Write persists only this many bytes, then errors (-1: off)
	syncErr    error
	shortWrote bool
}

var errInjectedWrite = errors.New("injected: short write")

func (f *faultFile) Write(b []byte) (int, error) {
	if f.shortNext >= 0 {
		n := f.shortNext
		if n > len(b) {
			n = len(b)
		}
		f.shortNext = -1
		f.shortWrote = true
		f.File.Write(b[:n]) // garbage lands on disk, offset advances
		return n, errInjectedWrite
	}
	return f.File.Write(b)
}

func (f *faultFile) Sync() error {
	if f.syncErr != nil {
		return f.syncErr
	}
	return f.File.Sync()
}

// inject swaps l's segment file for a faultFile and returns it.
func inject(t *testing.T, l *Log) *faultFile {
	t.Helper()
	l.mu.Lock()
	defer l.mu.Unlock()
	real, ok := l.f.(*os.File)
	if !ok {
		t.Fatalf("log file is %T, want *os.File", l.f)
	}
	ff := &faultFile{File: real, shortNext: -1}
	l.f = ff
	return ff
}

// TestAppendRepairsShortWrite forces a write that persists only part of
// a frame. Append must report the error AND repair the file — truncate
// the torn bytes, seek back — so the next append lands at a valid
// boundary and recovery reads every surviving record with no torn tail.
func TestAppendRepairsShortWrite(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 2; id++ {
		if _, err := l.Append(Record{Op: OpSchedule, ID: id, Deadline: int64(id * 10)}); err != nil {
			t.Fatalf("append %d: %v", id, err)
		}
	}
	ff := inject(t, l)

	ff.shortNext = 5 // part of the frame header reaches the disk
	if _, err := l.Append(Record{Op: OpSchedule, ID: 3, Deadline: 30}); !errors.Is(err, errInjectedWrite) {
		t.Fatalf("short-write append err = %v, want injected error", err)
	}
	if !ff.shortWrote {
		t.Fatal("fault never triggered")
	}
	if l.Stats().Failed {
		t.Fatal("repairable short write marked the log failed")
	}

	// ENOSPC-style transients pass: the very next append must be
	// readable, not stranded behind five bytes of garbage.
	if _, err := l.Append(Record{Op: OpSchedule, ID: 4, Deadline: 40}); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	_, res, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if res.Torn {
		t.Fatalf("repaired log reports torn (%d bytes)", res.TornBytes)
	}
	if res.LogRecords != 3 {
		t.Fatalf("recovered %d records, want 3 (ids 1,2,4)", res.LogRecords)
	}
	for _, id := range []uint64{1, 2, 4} {
		if _, ok := res.State.Timers[id]; !ok {
			t.Fatalf("timer %d lost after short-write repair", id)
		}
	}
	if _, ok := res.State.Timers[3]; ok {
		t.Fatal("failed append's record resurrected")
	}
}

// TestSyncFailureFailsLog drives one fsync error through Commit and
// asserts the log transitions to failed: the error reaches the caller
// (no false ack) and every later mutation returns ErrFailed.
func TestSyncFailureFailsLog(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l.Append(Record{Op: OpSchedule, ID: 1, Deadline: 10})
	if err != nil {
		t.Fatal(err)
	}
	ff := inject(t, l)
	ff.syncErr = errors.New("injected: fsync lost the pages")

	if err := l.Commit(lsn); err == nil {
		t.Fatal("Commit swallowed the fsync error")
	}
	if !l.Stats().Failed {
		t.Fatal("fsync error did not fail the log")
	}
	if _, err := l.Append(Record{Op: OpSchedule, ID: 2, Deadline: 20}); !errors.Is(err, ErrFailed) {
		t.Fatalf("Append on failed log = %v, want ErrFailed", err)
	}
	if err := l.Commit(lsn); !errors.Is(err, ErrFailed) {
		t.Fatalf("Commit on failed log = %v, want ErrFailed", err)
	}
	if err := l.Snapshot(nil); !errors.Is(err, ErrFailed) {
		t.Fatalf("Snapshot on failed log = %v, want ErrFailed", err)
	}
	// Close still releases the descriptor; recovery owns the rest.
	if err := l.Close(); err != nil {
		t.Fatalf("close failed log: %v", err)
	}

	// What DID reach the disk before the failure replays normally.
	_, res, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if _, ok := res.State.Timers[1]; !ok {
		t.Fatal("pre-failure record lost")
	}
}

// TestStateTracksIDHighWater pins the allocator seed semantics: NextID
// is the max over every timer ID the log ever named — schedules,
// settles of compacted-away admissions, and explicit OpHighWater pins —
// never just the outstanding set.
func TestStateTracksIDHighWater(t *testing.T) {
	st := NewState()
	st.Apply(Record{Op: OpSchedule, ID: 5, Deadline: 50})
	st.Apply(Record{Op: OpFire, ID: 5})
	if st.NextID != 5 {
		t.Fatalf("NextID=%d after schedule+fire of 5", st.NextID)
	}
	st.Apply(Record{Op: OpCancel, ID: 12}) // settled history survived as a lone cancel
	if st.NextID != 12 {
		t.Fatalf("NextID=%d, want 12 from cancel record", st.NextID)
	}
	st.Apply(Record{Op: OpHighWater, ID: 40})
	if st.NextID != 40 {
		t.Fatalf("NextID=%d, want 40 from high-water pin", st.NextID)
	}
	st.Apply(Record{Op: OpSchedule, ID: 14, Deadline: 140})
	if st.NextID != 40 {
		t.Fatalf("NextID=%d regressed below the pin", st.NextID)
	}
	// Lease IDs are a different namespace and must not move the mark.
	st.Apply(Record{Op: OpLeaseGrant, ID: 90, Deadline: 900})
	if st.NextID != 40 {
		t.Fatalf("NextID=%d, lease grant leaked into timer IDs", st.NextID)
	}
	if len(st.Timers) != 1 || st.Scheduled != 2 {
		t.Fatalf("ledger drifted: timers=%d scheduled=%d", len(st.Timers), st.Scheduled)
	}
}
