package wal

import (
	"bytes"
	"testing"
)

// TestFrameDecoderIncremental feeds frames one byte at a time and
// expects each record to pop out exactly when its last byte arrives.
func TestFrameDecoderIncremental(t *testing.T) {
	recs := []Record{
		{Op: OpSchedule, Class: 2, ID: 7, Lease: 3, Deadline: 12345, Payload: []byte("hello")},
		{Op: OpCancel, ID: 7},
		{Op: OpFire, ID: 9, Deadline: -1},
		{Op: OpLeaseGrant, ID: 3, Deadline: 99},
	}
	var stream []byte
	for _, r := range recs {
		stream = appendFrame(stream, r)
	}

	var d FrameDecoder
	var got []Record
	var gotBytes int
	for i := 0; i < len(stream); i++ {
		if _, err := d.Write(stream[i : i+1]); err != nil {
			t.Fatalf("Write: %v", err)
		}
		for {
			rec, n, err := d.Next()
			if err != nil {
				t.Fatalf("Next at byte %d: %v", i, err)
			}
			if n == 0 {
				break
			}
			got = append(got, rec)
			gotBytes += n
		}
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	if gotBytes != len(stream) {
		t.Fatalf("frame bytes sum %d, want %d", gotBytes, len(stream))
	}
	for i, r := range recs {
		g := got[i]
		if g.Op != r.Op || g.Class != r.Class || g.ID != r.ID || g.Lease != r.Lease || g.Deadline != r.Deadline || !bytes.Equal(g.Payload, r.Payload) {
			t.Fatalf("record %d: got %+v, want %+v", i, g, r)
		}
	}
	if d.Buffered() != 0 {
		t.Fatalf("Buffered() = %d after draining, want 0", d.Buffered())
	}
}

// TestFrameDecoderCorrupt checks that poisoned bytes surface as
// ErrCorruptFrame (not a hang or a panic), and that Reset recovers the
// decoder for a clean re-fetch.
func TestFrameDecoderCorrupt(t *testing.T) {
	good := appendFrame(nil, Record{Op: OpSchedule, ID: 1, Deadline: 5})

	cases := map[string][]byte{
		"bit-flip-in-body": func() []byte {
			b := append([]byte(nil), good...)
			b[len(b)-1] ^= 0xff
			return b
		}(),
		"insane-length": func() []byte {
			b := append([]byte(nil), good...)
			b[0], b[1], b[2], b[3] = 0xff, 0xff, 0xff, 0xff
			return b
		}(),
		"zero-length": make([]byte, frameHeaderSize+recordHeaderSize),
	}
	for name, poison := range cases {
		var d FrameDecoder
		d.Write(poison)
		if _, _, err := d.Next(); err != ErrCorruptFrame {
			t.Fatalf("%s: Next err = %v, want ErrCorruptFrame", name, err)
		}
		// The error is sticky until Reset.
		if _, _, err := d.Next(); err != ErrCorruptFrame {
			t.Fatalf("%s: second Next err = %v, want ErrCorruptFrame", name, err)
		}
		d.Reset()
		d.Write(good)
		rec, n, err := d.Next()
		if err != nil || n != len(good) || rec.ID != 1 {
			t.Fatalf("%s: after Reset got (%+v, %d, %v)", name, rec, n, err)
		}
	}
}

// TestReadDurableServesOnlyCommitted: appended-but-unsynced bytes are
// invisible to the stream; Commit publishes them.
func TestReadDurableServesOnlyCommitted(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	rec := Record{Op: OpSchedule, ID: 1, Deadline: 100, Payload: []byte("p")}
	lsn, err := l.Append(rec)
	if err != nil {
		t.Fatal(err)
	}
	pos := l.FollowPos()
	if pos.DurableBytes != 0 {
		t.Fatalf("DurableBytes = %d before Commit, want 0", pos.DurableBytes)
	}
	if b, err := l.ReadDurable(pos.Epoch, 0, 0); err != nil || b != nil {
		t.Fatalf("ReadDurable before Commit = (%d bytes, %v), want (nil, nil)", len(b), err)
	}

	if err := l.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	pos = l.FollowPos()
	want := int64(frameSize(rec))
	if pos.DurableBytes != want {
		t.Fatalf("DurableBytes = %d after Commit, want %d", pos.DurableBytes, want)
	}
	if pos.DurableLSN != 1 || pos.SegBaseLSN != 0 {
		t.Fatalf("pos = %+v, want DurableLSN 1, SegBaseLSN 0", pos)
	}
	b, err := l.ReadDurable(pos.Epoch, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var d FrameDecoder
	d.Write(b)
	got, n, err := d.Next()
	if err != nil || n != int(want) || got.ID != 1 || !bytes.Equal(got.Payload, []byte("p")) {
		t.Fatalf("streamed record = (%+v, %d, %v)", got, n, err)
	}
	// Caught up: nil, nil.
	if b, err := l.ReadDurable(pos.Epoch, pos.DurableBytes, 0); err != nil || b != nil {
		t.Fatalf("caught-up read = (%d bytes, %v), want (nil, nil)", len(b), err)
	}
	// max caps the read.
	if b, err := l.ReadDurable(pos.Epoch, 0, 4); err != nil || len(b) != 4 {
		t.Fatalf("capped read = (%d bytes, %v), want 4 bytes", len(b), err)
	}
}

// TestReadDurableErrors: stale epoch → ErrEpochGone; offset past the
// durable boundary → ErrBadOffset.
func TestReadDurableErrors(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(Record{Op: OpSchedule, ID: 1, Deadline: 9}); err != nil {
		t.Fatal(err)
	}
	pos := l.FollowPos()
	if _, err := l.ReadDurable(pos.Epoch, pos.DurableBytes+1, 0); err != ErrBadOffset {
		t.Fatalf("past-durable read err = %v, want ErrBadOffset", err)
	}
	if _, err := l.ReadDurable(pos.Epoch, -1, 0); err != ErrBadOffset {
		t.Fatalf("negative offset err = %v, want ErrBadOffset", err)
	}

	if err := l.Snapshot([]Record{{Op: OpSchedule, ID: 1, Deadline: 9}}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.ReadDurable(pos.Epoch, 0, 0); err != ErrEpochGone {
		t.Fatalf("stale-epoch read err = %v, want ErrEpochGone", err)
	}
}

// TestSnapshotSeed: epoch 0 has no seed; after a snapshot the seed's
// frames replay to the snapshotted state, and the new segment's stream
// position starts empty with SegBaseLSN at the rotation point.
func TestSnapshotSeed(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	if epoch, data, err := l.SnapshotSeed(); err != nil || epoch != 0 || data != nil {
		t.Fatalf("epoch-0 seed = (%d, %d bytes, %v), want (0, nil, nil)", epoch, len(data), err)
	}

	for id := uint64(1); id <= 3; id++ {
		if _, err := l.Append(Record{Op: OpSchedule, ID: id, Deadline: int64(id * 10)}); err != nil {
			t.Fatal(err)
		}
	}
	seed := []Record{
		{Op: OpSchedule, ID: 2, Deadline: 20},
		{Op: OpSchedule, ID: 3, Deadline: 30},
		{Op: OpHighWater, ID: 3},
	}
	if err := l.Snapshot(seed); err != nil {
		t.Fatal(err)
	}

	epoch, data, err := l.SnapshotSeed()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("seed epoch = %d, want 1", epoch)
	}
	st := NewState()
	var d FrameDecoder
	d.Write(data)
	frames := 0
	for {
		rec, n, err := d.Next()
		if err != nil {
			t.Fatalf("seed frame %d: %v", frames, err)
		}
		if n == 0 {
			break
		}
		st.Apply(rec)
		frames++
	}
	if frames != len(seed) {
		t.Fatalf("seed frames = %d, want %d", frames, len(seed))
	}
	if len(st.Timers) != 2 || st.NextID != 3 {
		t.Fatalf("seed state: %d timers, NextID %d; want 2, 3", len(st.Timers), st.NextID)
	}

	pos := l.FollowPos()
	if pos.Epoch != 1 || pos.DurableBytes != 0 || pos.SegBaseLSN != 3 {
		t.Fatalf("post-rotation pos = %+v, want epoch 1, 0 durable bytes, SegBaseLSN 3", pos)
	}
}

// TestFollowCursorSurvivesRestart: a follower cursor taken against a
// primary that restarts (same epoch, recovered tail) stays valid — the
// durable prefix it saw is still byte-identical.
func TestFollowCursorSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Record{Op: OpSchedule, ID: 1, Deadline: 10}); err != nil {
		t.Fatal(err)
	}
	firstLen := l.FollowPos().DurableBytes
	first, err := l.ReadDurable(l.FollowPos().Epoch, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, _, err := Open(dir, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if _, err := l2.Append(Record{Op: OpSchedule, ID: 2, Deadline: 20}); err != nil {
		t.Fatal(err)
	}
	pos := l2.FollowPos()
	if pos.DurableBytes <= firstLen {
		t.Fatalf("durable bytes %d after restart+append, want > %d", pos.DurableBytes, firstLen)
	}
	// Resume from the old cursor: only the new record arrives.
	tail, err := l2.ReadDurable(pos.Epoch, firstLen, 0)
	if err != nil {
		t.Fatal(err)
	}
	var d FrameDecoder
	d.Write(first)
	d.Write(tail)
	ids := []uint64{}
	for {
		rec, n, err := d.Next()
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		ids = append(ids, rec.ID)
	}
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("replayed ids = %v, want [1 2]", ids)
	}
}
