package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// logFile is the file surface the log appends through. *os.File
// satisfies it; tests substitute fault-injecting wrappers to exercise
// the short-write repair and fsync-failure paths.
type logFile interface {
	io.Writer
	Sync() error
	Seek(offset int64, whence int) (int64, error)
	Truncate(size int64) error
	Close() error
}

// Options tunes a log's fsync batching. The zero value syncs only on
// Commit, Sync, Snapshot, and Close — every Commit is still durable
// (group-committed), but appends that nobody waits on ride along with
// the next sync.
type Options struct {
	// SyncEvery fsyncs once this many appended records are not yet
	// durable: 1 makes every append durable before Append returns, N
	// batches N records per fsync, 0 disables count-triggered syncs.
	SyncEvery int
	// SyncInterval fsyncs on a background cadence, bounding how long a
	// record that nobody Commits can stay volatile; 0 disables it.
	SyncInterval time.Duration
}

// LSN is a log sequence number: the 1-based count of records appended.
// LSNs are monotonic across snapshots and rotations.
type LSN = uint64

// Stats is the log's counter snapshot, exported by twd's /metrics.
type Stats struct {
	// Epoch is the active segment's epoch (bumped by each snapshot).
	Epoch uint64
	// LSN is the last appended record; Durable the last known fsynced.
	LSN, Durable LSN
	// Appends, Syncs, Snapshots count operations since Open.
	Appends, Syncs, Snapshots uint64
	// SegmentBytes is the active segment's size; DurableBytes the prefix
	// of it known to be on stable storage (always a frame boundary — the
	// replication streamer serves exactly this prefix, so a standby never
	// sees a record that could still be lost).
	SegmentBytes, DurableBytes int64
	// SegBaseLSN is the LSN of the last record that is NOT in the active
	// segment: record k of the segment (1-based) has LSN SegBaseLSN+k.
	SegBaseLSN LSN
	// Failed reports an unrecoverable I/O error: every mutation returns
	// ErrFailed and the daemon should be restarted to recover from disk.
	Failed bool
}

// Log is an append-only record log over one directory:
//
//	wal-<epoch>.log    the active (and only) segment
//	snap-<epoch>.snap  the snapshot that seeds epoch <epoch>
//
// Appends serialize on an internal mutex; fsyncs are group-committed
// (every waiter of one sync shares a single fsync syscall, and the
// mutex is not held across it, so appends continue while the disk
// works). Snapshot compacts: it atomically writes the caller's record
// set as the new epoch's seed, rotates to a fresh segment, and deletes
// older epochs.
type Log struct {
	dir string
	opt Options

	mu          sync.Mutex
	cond        *sync.Cond
	f           logFile
	epoch       uint64
	buf         []byte
	lsn         LSN
	durable     LSN
	segBase     LSN   // LSN of the last record not in the active segment
	syncing     bool
	closed      bool
	failed      bool // unrecoverable I/O error; every mutation returns ErrFailed
	size        int64
	durableSize int64 // bytes of the active segment known fsynced (frame-aligned)

	stopInterval chan struct{}
	intervalDone chan struct{}

	appends   atomic.Uint64
	syncs     atomic.Uint64
	snapshots atomic.Uint64
}

// RecoverResult reports what Open reconstructed from disk.
type RecoverResult struct {
	// State is the replayed state: the exact outstanding timer and
	// lease sets as of the last valid frame.
	State *State
	// Epoch is the recovered (now active) epoch.
	Epoch uint64
	// SnapshotRecords and LogRecords count frames replayed from the
	// snapshot seed and the segment.
	SnapshotRecords, LogRecords uint64
	// Torn reports that the segment ended in an invalid frame — a torn
	// or truncated tail, now discarded; TornBytes is how many trailing
	// bytes were dropped. A cleanly sealed log is never torn.
	Torn      bool
	TornBytes int64
}

// Open opens (creating if needed) the log in dir, replays snapshot +
// segment into a RecoverResult, truncates any torn tail, and leaves the
// log positioned for appending.
func Open(dir string, opt Options) (*Log, *RecoverResult, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	epoch, err := activeEpoch(dir)
	if err != nil {
		return nil, nil, err
	}
	res := &RecoverResult{State: NewState(), Epoch: epoch}

	if epoch > 0 {
		snapRecs, _, snapTorn, err := readSegment(snapPath(dir, epoch))
		if err != nil && !os.IsNotExist(err) {
			return nil, nil, err
		}
		for _, r := range snapRecs {
			res.State.Apply(r)
		}
		res.SnapshotRecords = uint64(len(snapRecs))
		res.Torn = res.Torn || snapTorn
	}

	logFile := walPath(dir, epoch)
	recs, validLen, torn, err := readSegment(logFile)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, err
	}
	for _, r := range recs {
		res.State.Apply(r)
	}
	res.LogRecords = uint64(len(recs))

	f, err := os.OpenFile(logFile, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if torn {
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		res.Torn = true
		res.TornBytes = st.Size() - validLen
		// Drop the torn tail so the next frame appends at a valid
		// boundary; leaving it would strand every future frame behind
		// garbage the reader stops at.
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(validLen, 0); err != nil {
		f.Close()
		return nil, nil, err
	}

	l := &Log{
		dir:         dir,
		opt:         opt,
		f:           f,
		epoch:       epoch,
		size:        validLen,
		durableSize: validLen,
		lsn:         LSN(len(recs)),
		durable:     LSN(len(recs)), // everything replayed is on disk by definition
	}
	l.cond = sync.NewCond(&l.mu)
	// A crash between a snapshot's rename and its old-epoch deletion
	// leaves stale files behind; sweep them now that the active epoch
	// is recovered and durable.
	for e := epoch; e > 0; e-- {
		removedAny := os.Remove(walPath(dir, e-1)) == nil
		if e-1 > 0 && os.Remove(snapPath(dir, e-1)) == nil {
			removedAny = true
		}
		if !removedAny {
			break
		}
	}
	if opt.SyncInterval > 0 {
		l.stopInterval = make(chan struct{})
		l.intervalDone = make(chan struct{})
		go l.intervalLoop(opt.SyncInterval)
	}
	return l, res, nil
}

// Append writes rec to the log and returns its LSN. The record is in
// the operating system's hands but not necessarily on stable storage;
// call Commit(lsn) before acknowledging the operation to a client, or
// rely on the SyncEvery/SyncInterval policy for bounded-loss batching.
func (l *Log) Append(rec Record) (LSN, error) {
	if rec.Op == 0 || rec.Op > opMax {
		return 0, ErrBadOp
	}
	if len(rec.Payload) > MaxPayload {
		return 0, ErrPayloadTooLarge
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	if l.failed {
		l.mu.Unlock()
		return 0, ErrFailed
	}
	l.buf = appendFrame(l.buf[:0], rec)
	if _, err := l.f.Write(l.buf); err != nil {
		// A failed or short write may have advanced the file past
		// partially written frame bytes. Repair to the last good frame
		// boundary — truncate the garbage and seek back — so the next
		// append lands where recovery can read it; if the repair itself
		// fails, the tail is unknowable and the log is dead.
		if _, serr := l.f.Seek(l.size, 0); serr != nil {
			l.failed = true
		} else if terr := l.f.Truncate(l.size); terr != nil {
			l.failed = true
		}
		l.cond.Broadcast()
		l.mu.Unlock()
		return 0, err
	}
	l.lsn++
	lsn := l.lsn
	l.size += int64(len(l.buf))
	pending := l.lsn - l.durable
	l.mu.Unlock()
	l.appends.Add(1)

	if l.opt.SyncEvery > 0 && pending >= LSN(l.opt.SyncEvery) {
		if err := l.Commit(lsn); err != nil {
			return lsn, err
		}
	}
	return lsn, nil
}

// Commit blocks until every record up to lsn is on stable storage,
// group-committing: concurrent committers share one fsync, and the
// append path keeps running while the disk works.
func (l *Log) Commit(lsn LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.durable < lsn {
		if l.closed {
			return ErrClosed
		}
		if l.failed {
			return ErrFailed
		}
		if l.syncing {
			// Someone else's fsync is in flight; it may or may not cover
			// lsn — wait and re-check.
			l.cond.Wait()
			continue
		}
		l.syncing = true
		f := l.f
		high := l.lsn
		// Bytes written before this fsync started are covered by it;
		// anything appended while the disk works waits for the next one.
		highSize := l.size
		l.mu.Unlock()
		err := f.Sync()
		l.mu.Lock()
		l.syncing = false
		l.syncs.Add(1)
		if err == nil && high > l.durable {
			l.durable = high
			if highSize > l.durableSize {
				l.durableSize = highSize
			}
		}
		if err != nil {
			// After a failed fsync the kernel may have dropped the dirty
			// pages it could not write: retrying can report success for
			// data that never reached the disk. Durability is
			// unknowable from here on, so the log refuses further work.
			l.failed = true
		}
		l.cond.Broadcast()
		if err != nil {
			return err
		}
	}
	return nil
}

// Sync makes every appended record durable.
func (l *Log) Sync() error {
	l.mu.Lock()
	lsn := l.lsn
	l.mu.Unlock()
	return l.Commit(lsn)
}

// intervalLoop is the SyncInterval policy: a background fsync cadence.
func (l *Log) intervalLoop(every time.Duration) {
	defer close(l.intervalDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-l.stopInterval:
			return
		case <-t.C:
			_ = l.Sync()
		}
	}
}

// Snapshot compacts the log: records becomes the new epoch's seed (it
// must describe the full live state — every outstanding timer and
// lease), the segment rotates, and older epochs are deleted. The caller
// must guarantee that records reflects every Append issued before the
// call and that no Append runs concurrently (twd serializes both under
// its state lock). On success the seed and the empty segment are
// durable and the old epoch's files are removed best-effort. On error
// the old epoch stays authoritative — a seed that already renamed into
// place is removed again — except when that rollback itself fails, in
// which case the log transitions to failed (ErrFailed thereafter) so no
// further appends can land where recovery would not look.
func (l *Log) Snapshot(records []Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.failed {
		return ErrFailed
	}
	for l.syncing {
		l.cond.Wait() // never rotate under an in-flight fsync
	}
	newEpoch := l.epoch + 1

	// Seed file: write-all, fsync, atomic rename. A failure before the
	// rename leaves the old epoch intact and authoritative; the tmp file
	// is swept best-effort.
	snap := snapPath(l.dir, newEpoch)
	tmp := snap + ".tmp"
	sf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	buf := make([]byte, 0, 64<<10)
	for _, rec := range records {
		buf = appendFrame(buf, rec)
		if len(buf) >= 60<<10 {
			if _, err := sf.Write(buf); err != nil {
				sf.Close()
				os.Remove(tmp)
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := sf.Write(buf); err != nil {
			sf.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := sf.Sync(); err != nil {
		sf.Close()
		os.Remove(tmp)
		return err
	}
	if err := sf.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, snap); err != nil {
		os.Remove(tmp)
		return err
	}

	// The rename is the commit point: recovery now prefers newEpoch's
	// seed. A failure past here must NOT leave the in-memory log
	// appending to the old epoch — those records would be invisible to
	// recovery — so any error rolls the rename back; if even that fails,
	// the log is dead.
	rollback := func(cause error) error {
		os.Remove(walPath(l.dir, newEpoch))
		if rerr := os.Remove(snap); rerr != nil {
			l.failed = true
			l.cond.Broadcast()
			return fmt.Errorf("wal: snapshot failed (%w) and rollback failed (%v): log failed", cause, rerr)
		}
		syncDir(l.dir)
		return cause
	}

	// Fresh segment for the new epoch, then the directory entries.
	nf, err := os.OpenFile(walPath(l.dir, newEpoch), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return rollback(err)
	}
	if err := syncDir(l.dir); err != nil {
		nf.Close()
		return rollback(err)
	}

	old := l.f
	oldEpoch := l.epoch
	l.f = nf
	l.epoch = newEpoch
	l.size = 0
	l.durableSize = 0
	l.segBase = l.lsn
	// Every record up to lsn is represented by the durable seed: the
	// old segment is obsolete, so nothing remains to fsync.
	l.durable = l.lsn
	l.snapshots.Add(1)
	old.Close()
	for e := oldEpoch; ; e-- {
		removedAny := false
		if os.Remove(walPath(l.dir, e)) == nil {
			removedAny = true
		}
		if e > 0 && os.Remove(snapPath(l.dir, e)) == nil {
			removedAny = true
		}
		if e == 0 || !removedAny {
			break
		}
	}
	return nil
}

// Close syncs and closes the log. It does not write a seal record —
// that is the caller's shutdown protocol (append OpSeal, Sync, Close).
// A failed log still closes its file descriptor: there is nothing left
// to flush that could be trusted anyway.
func (l *Log) Close() error {
	if err := l.Sync(); err != nil && err != ErrClosed && err != ErrFailed {
		return err
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	f := l.f
	l.cond.Broadcast()
	l.mu.Unlock()
	if l.stopInterval != nil {
		close(l.stopInterval)
		<-l.intervalDone
	}
	return f.Close()
}

// Stats returns the log's counter snapshot.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	s := Stats{
		Epoch:        l.epoch,
		LSN:          l.lsn,
		Durable:      l.durable,
		SegmentBytes: l.size,
		DurableBytes: l.durableSize,
		SegBaseLSN:   l.segBase,
		Failed:       l.failed,
	}
	l.mu.Unlock()
	s.Appends = l.appends.Load()
	s.Syncs = l.syncs.Load()
	s.Snapshots = l.snapshots.Load()
	return s
}

// SegmentBytes reports the active segment's size, the quantity twd's
// auto-compaction thresholds on.
func (l *Log) SegmentBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// walPath and snapPath name epoch files. Eight hex digits sort
// lexically in epoch order for any realistic epoch count.
func walPath(dir string, epoch uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.log", epoch))
}

func snapPath(dir string, epoch uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016x.snap", epoch))
}

// activeEpoch picks the epoch to recover: the highest epoch that has a
// segment or snapshot file; 0 for an empty directory.
func activeEpoch(dir string) (uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	var epochs []uint64
	for _, e := range ents {
		name := e.Name()
		var hex string
		switch {
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			hex = strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			hex = strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap")
		default:
			continue
		}
		if v, err := strconv.ParseUint(hex, 16, 64); err == nil {
			epochs = append(epochs, v)
		}
	}
	if len(epochs) == 0 {
		return 0, nil
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	return epochs[len(epochs)-1], nil
}

// readSegment replays one framed file: the decoded records of the valid
// prefix, the prefix's byte length, and whether trailing bytes had to
// be discarded (torn reports only a dirty tail; a missing file is
// returned as the os.IsNotExist error with zero records).
func readSegment(path string) (recs []Record, validLen int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, false, err
	}
	off := 0
	for off < len(data) {
		rec, n, ok := decodeFrame(data[off:])
		if !ok {
			return recs, int64(off), true, nil
		}
		recs = append(recs, rec)
		off += n
	}
	return recs, int64(off), false, nil
}

// syncDir fsyncs a directory so renames and creates within it are
// durable. Best-effort on filesystems that refuse directory fsync.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !os.IsPermission(err) {
		return err
	}
	return nil
}
