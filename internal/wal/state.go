package wal

// TimerState is one outstanding timer reconstructed by replay.
type TimerState struct {
	ID       uint64
	Class    uint8
	Lease    uint64
	Deadline int64 // absolute wall deadline, unix nanoseconds
	Payload  []byte
}

// LeaseState is one live lease reconstructed by replay.
type LeaseState struct {
	ID     uint64
	Expiry int64 // absolute wall expiry, unix nanoseconds
}

// State is the replayed view of a log: the exact outstanding timer and
// lease sets plus the lifetime counters that close the conservation
// ledger,
//
//	Scheduled == Fired + Cancelled + len(Timers)
//
// Apply is idempotent per record identity — a duplicated frame (an
// appender that retried after an ambiguous failure) transitions the
// state once and inflates no counter — so replaying any prefix of a log
// twice, or a log with retry duplicates, reconstructs the same state as
// the clean history.
type State struct {
	// Timers holds the outstanding timers (scheduled, neither fired nor
	// cancelled), keyed by daemon ID.
	Timers map[uint64]TimerState
	// Leases holds the live leases, keyed by lease ID.
	Leases map[uint64]LeaseState
	// Scheduled, Fired, Cancelled count distinct timer transitions;
	// LeasesGranted and LeasesExpired the lease equivalents.
	Scheduled, Fired, Cancelled  uint64
	LeasesGranted, LeasesExpired uint64
	// NextID is the timer-ID allocator's high-water mark: the largest
	// timer ID seen in any timer record or OpHighWater pin. Seeding the
	// allocator from it (not from the outstanding set, which compaction
	// shrinks) guarantees restarts never re-issue a settled timer's ID.
	NextID uint64
	// Sealed reports that the final applied record was a clean-shutdown
	// seal; any record applied after a seal clears it.
	Sealed bool
}

// NewState returns an empty state.
func NewState() *State {
	return &State{
		Timers: make(map[uint64]TimerState),
		Leases: make(map[uint64]LeaseState),
	}
}

// Apply folds one record into the state. Unknown IDs are ignored where
// the transition needs an existing object (cancel/reset/fire of a timer
// already settled — the shape replay sees when a snapshot compacted the
// admission away, or when a duplicate frame re-applies a settled op).
func (s *State) Apply(rec Record) {
	s.Sealed = false
	switch rec.Op {
	case OpSchedule, OpCancel, OpReset, OpFire, OpHighWater:
		// Every timer record (and the explicit high-water pin) carries a
		// timer ID the allocator must never re-issue. Cancel/reset/fire
		// matter too: compaction can discard the admission while a later
		// record still names the ID.
		if rec.ID > s.NextID {
			s.NextID = rec.ID
		}
	}
	switch rec.Op {
	case OpSchedule:
		if _, dup := s.Timers[rec.ID]; !dup {
			s.Scheduled++
		}
		s.Timers[rec.ID] = TimerState{
			ID:       rec.ID,
			Class:    rec.Class,
			Lease:    rec.Lease,
			Deadline: rec.Deadline,
			Payload:  rec.Payload,
		}
	case OpCancel:
		if _, live := s.Timers[rec.ID]; live {
			delete(s.Timers, rec.ID)
			s.Cancelled++
		}
	case OpReset:
		if t, live := s.Timers[rec.ID]; live {
			t.Deadline = rec.Deadline
			s.Timers[rec.ID] = t
		}
	case OpFire:
		if _, live := s.Timers[rec.ID]; live {
			delete(s.Timers, rec.ID)
			s.Fired++
		}
	case OpLeaseGrant:
		if _, dup := s.Leases[rec.ID]; !dup {
			s.LeasesGranted++
		}
		s.Leases[rec.ID] = LeaseState{ID: rec.ID, Expiry: rec.Deadline}
	case OpLeaseRenew:
		if l, live := s.Leases[rec.ID]; live {
			l.Expiry = rec.Deadline
			s.Leases[rec.ID] = l
		}
	case OpLeaseExpire:
		if _, live := s.Leases[rec.ID]; live {
			delete(s.Leases, rec.ID)
			s.LeasesExpired++
		}
	case OpSeal:
		s.Sealed = true
	}
}

// Outstanding reports the number of outstanding timers.
func (s *State) Outstanding() int { return len(s.Timers) }

// ResetTo discards the state and rebuilds it from seed — what a
// replication follower does when the primary compacts its epoch away:
// the new snapshot is the full live state, and stale local records must
// not survive it (a timer cancelled during the gap would otherwise
// resurrect as outstanding). The pointer identity is preserved so
// holders of the *State keep seeing the rebuilt view.
func (s *State) ResetTo(seed []Record) {
	*s = State{
		Timers: make(map[uint64]TimerState, len(seed)),
		Leases: make(map[uint64]LeaseState),
	}
	for _, rec := range seed {
		s.Apply(rec)
	}
}
