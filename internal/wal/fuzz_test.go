package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeeds builds the in-code seed corpus: a clean history, a torn
// one, a duplicated frame, a sealed log, and adversarial junk.
// Committed regression seeds live in testdata/fuzz/FuzzWALReplay
// (regenerate with WAL_GEN_SEEDS=1 go test -run TestGenerateFuzzSeeds).
func fuzzSeeds() [][]byte {
	clean, _ := writeHistory(genHistory(1, 30))
	torn := clean[:len(clean)-7]
	var dup []byte
	dup = appendFrame(dup, Record{Op: OpSchedule, ID: 5, Deadline: 50, Payload: []byte("pp")})
	dup = append(dup, dup...)
	var sealed []byte
	sealed = appendFrame(sealed, Record{Op: OpSchedule, ID: 1, Deadline: 10})
	sealed = appendFrame(sealed, Record{Op: OpSeal})
	return [][]byte{
		nil,
		clean,
		torn,
		dup,
		sealed,
		[]byte("not a wal segment at all"),
		make([]byte, 256), // zero-filled block: the classic torn-tail shape
	}
}

// FuzzWALReplay feeds arbitrary bytes to recovery as an epoch-0
// segment. Whatever the bytes, recovery must not panic, must close the
// conservation ledger, must truncate to a boundary that accepts new
// appends, and must be idempotent: recovering the recovered file again
// yields the identical state with no torn tail.
func FuzzWALReplay(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(walPath(dir, 0), data, 0o644); err != nil {
			t.Skip()
		}
		l, res, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open on arbitrary bytes: %v", err)
		}
		st := res.State
		if st.Scheduled != st.Fired+st.Cancelled+uint64(len(st.Timers)) {
			t.Fatalf("conservation ledger open: scheduled=%d fired=%d cancelled=%d outstanding=%d",
				st.Scheduled, st.Fired, st.Cancelled, len(st.Timers))
		}
		if res.Torn && res.TornBytes <= 0 {
			t.Fatalf("torn with TornBytes=%d", res.TornBytes)
		}
		if !res.Torn && res.TornBytes != 0 {
			t.Fatalf("not torn but TornBytes=%d", res.TornBytes)
		}
		lsn, err := l.Append(Record{Op: OpSchedule, ID: 1 << 60, Deadline: 77})
		if err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if lsn != LSN(res.LogRecords)+1 {
			t.Fatalf("post-recovery LSN %d, replayed %d", lsn, res.LogRecords)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}

		// Second recovery of the repaired file: stable and untorn.
		_, res2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("re-open: %v", err)
		}
		if res2.Torn {
			t.Fatal("recovered-then-appended file is torn on second recovery")
		}
		if res2.LogRecords != res.LogRecords+1 {
			t.Fatalf("second recovery replayed %d, want %d", res2.LogRecords, res.LogRecords+1)
		}
		want, ok := res2.State.Timers[1<<60]
		if !ok || want.Deadline != 77 {
			t.Fatal("post-recovery append lost on second recovery")
		}
	})
}

// TestGenerateFuzzSeeds writes the seed corpus to testdata so the
// regression inputs are committed alongside the code. Skipped unless
// WAL_GEN_SEEDS=1.
func TestGenerateFuzzSeeds(t *testing.T) {
	if os.Getenv("WAL_GEN_SEEDS") == "" {
		t.Skip("set WAL_GEN_SEEDS=1 to regenerate testdata/fuzz corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzWALReplay")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range fuzzSeeds() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
