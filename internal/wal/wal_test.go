package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// mustOpen opens a log in dir, failing the test on error.
func mustOpen(t *testing.T, dir string, opt Options) (*Log, *RecoverResult) {
	t.Helper()
	l, res, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, res
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, res := mustOpen(t, dir, Options{})
	if res.LogRecords != 0 || res.Torn || res.State.Outstanding() != 0 {
		t.Fatalf("fresh dir recovered non-empty: %+v", res)
	}

	recs := []Record{
		{Op: OpSchedule, ID: 1, Class: 2, Deadline: 1000, Payload: []byte("a")},
		{Op: OpSchedule, ID: 2, Deadline: 2000},
		{Op: OpSchedule, ID: 3, Lease: 7, Deadline: 3000, Payload: []byte("ccc")},
		{Op: OpLeaseGrant, ID: 7, Deadline: 9000},
		{Op: OpCancel, ID: 2},
		{Op: OpReset, ID: 3, Deadline: 3500},
		{Op: OpFire, ID: 1},
		{Op: OpLeaseRenew, ID: 7, Deadline: 9500},
	}
	for _, r := range recs {
		if _, err := l.Append(r); err != nil {
			t.Fatalf("Append(%v): %v", r.Op, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, res2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	st := res2.State
	if res2.Torn {
		t.Fatal("clean log recovered as torn")
	}
	if res2.LogRecords != uint64(len(recs)) {
		t.Fatalf("LogRecords = %d, want %d", res2.LogRecords, len(recs))
	}
	if st.Outstanding() != 1 {
		t.Fatalf("outstanding = %d, want 1", st.Outstanding())
	}
	tm, ok := st.Timers[3]
	if !ok || tm.Deadline != 3500 || tm.Lease != 7 || string(tm.Payload) != "ccc" {
		t.Fatalf("timer 3 = %+v, ok=%v", tm, ok)
	}
	ls, ok := st.Leases[7]
	if !ok || ls.Expiry != 9500 {
		t.Fatalf("lease 7 = %+v, ok=%v", ls, ok)
	}
	if st.Scheduled != 3 || st.Fired != 1 || st.Cancelled != 1 {
		t.Fatalf("ledger scheduled=%d fired=%d cancelled=%d", st.Scheduled, st.Fired, st.Cancelled)
	}
	if st.Scheduled != st.Fired+st.Cancelled+uint64(st.Outstanding()) {
		t.Fatal("conservation ledger does not close")
	}
}

func TestSealMarksCleanShutdown(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	if _, err := l.Append(Record{Op: OpSchedule, ID: 1, Deadline: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Record{Op: OpSeal}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, res := mustOpen(t, dir, Options{})
	if !res.State.Sealed {
		t.Fatal("sealed log not recovered as Sealed")
	}
	// Any activity after recovery voids the seal.
	if _, err := l2.Append(Record{Op: OpCancel, ID: 1}); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	_, res = mustOpen(t, dir, Options{})
	if res.State.Sealed {
		t.Fatal("seal survived a later record")
	}
}

func TestTornTailTruncatedAndAppendable(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	for i := uint64(1); i <= 5; i++ {
		if _, err := l.Append(Record{Op: OpSchedule, ID: i, Deadline: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Tear the tail: drop half of the last frame.
	path := walPath(dir, 0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frame := frameSize(Record{Op: OpSchedule, ID: 1, Deadline: 1})
	torn := data[:len(data)-frame/2]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, res := mustOpen(t, dir, Options{})
	if !res.Torn || res.TornBytes == 0 {
		t.Fatalf("torn tail not reported: %+v", res)
	}
	if res.LogRecords != 4 || res.State.Outstanding() != 4 {
		t.Fatalf("recovered %d records, %d outstanding; want 4, 4",
			res.LogRecords, res.State.Outstanding())
	}
	// The file must be appendable at a valid boundary after truncation.
	if _, err := l2.Append(Record{Op: OpSchedule, ID: 99, Deadline: 99}); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	_, res = mustOpen(t, dir, Options{})
	if res.Torn || res.State.Outstanding() != 5 {
		t.Fatalf("post-tear append lost: %+v", res)
	}
	if _, ok := res.State.Timers[99]; !ok {
		t.Fatal("appended record missing after reopen")
	}
}

func TestSnapshotCompacts(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	for i := uint64(1); i <= 100; i++ {
		if _, err := l.Append(Record{Op: OpSchedule, ID: i, Deadline: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 90; i++ {
		if _, err := l.Append(Record{Op: OpFire, ID: i}); err != nil {
			t.Fatal(err)
		}
	}
	// Seed = the ten live timers.
	var seed []Record
	for i := uint64(91); i <= 100; i++ {
		seed = append(seed, Record{Op: OpSchedule, ID: i, Deadline: int64(i)})
	}
	if err := l.Snapshot(seed); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if st := l.Stats(); st.Epoch != 1 || st.Durable != st.LSN {
		t.Fatalf("post-snapshot stats: %+v", st)
	}
	// Old epoch files are gone.
	if _, err := os.Stat(walPath(dir, 0)); !os.IsNotExist(err) {
		t.Fatalf("old segment survives: %v", err)
	}
	// Post-snapshot appends land in the new segment.
	if _, err := l.Append(Record{Op: OpCancel, ID: 100}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	_, res := mustOpen(t, dir, Options{})
	if res.Epoch != 1 || res.SnapshotRecords != 10 || res.LogRecords != 1 {
		t.Fatalf("recovery after snapshot: %+v", res)
	}
	if res.State.Outstanding() != 9 {
		t.Fatalf("outstanding = %d, want 9", res.State.Outstanding())
	}
	if _, ok := res.State.Timers[100]; ok {
		t.Fatal("cancelled timer 100 still outstanding")
	}
}

func TestOpenSweepsStaleEpochs(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	if _, err := l.Append(Record{Op: OpSchedule, ID: 1, Deadline: 5}); err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot([]Record{{Op: OpSchedule, ID: 1, Deadline: 5}}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Simulate a crash that left the pre-snapshot epoch behind.
	if err := os.WriteFile(walPath(dir, 0), []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2, res := mustOpen(t, dir, Options{})
	defer l2.Close()
	if res.Epoch != 1 || res.State.Outstanding() != 1 {
		t.Fatalf("recovery picked wrong epoch: %+v", res)
	}
	if _, err := os.Stat(walPath(dir, 0)); !os.IsNotExist(err) {
		t.Fatal("stale epoch-0 segment not swept")
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	const goroutines, each = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				id := uint64(g*each + i + 1)
				lsn, err := l.Append(Record{Op: OpSchedule, ID: id, Deadline: int64(id)})
				if err != nil {
					t.Errorf("Append: %v", err)
					return
				}
				if err := l.Commit(lsn); err != nil {
					t.Errorf("Commit: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := l.Stats()
	if st.Durable != st.LSN || st.LSN != goroutines*each {
		t.Fatalf("stats after concurrent commits: %+v", st)
	}
	l.Close()
	_, res := mustOpen(t, dir, Options{})
	if res.State.Outstanding() != goroutines*each {
		t.Fatalf("outstanding = %d, want %d", res.State.Outstanding(), goroutines*each)
	}
}

func TestSyncEveryPolicy(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SyncEvery: 4})
	for i := uint64(1); i <= 10; i++ {
		if _, err := l.Append(Record{Op: OpSchedule, ID: i, Deadline: 1}); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Durable < 8 {
		t.Fatalf("SyncEvery=4 left durable=%d after 10 appends", st.Durable)
	}
	if st.Syncs == 0 || st.Syncs > 4 {
		t.Fatalf("syncs = %d, want 1..4 (count-triggered batching)", st.Syncs)
	}
	l.Close()
}

func TestSyncIntervalPolicy(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SyncInterval: 5 * time.Millisecond})
	if _, err := l.Append(Record{Op: OpSchedule, ID: 1, Deadline: 1}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Durable < 1 {
		if time.Now().After(deadline) {
			t.Fatal("SyncInterval never made the record durable")
		}
		time.Sleep(time.Millisecond)
	}
	l.Close()
}

func TestAppendValidation(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	if _, err := l.Append(Record{Op: 0}); err != ErrBadOp {
		t.Fatalf("zero op: %v", err)
	}
	if _, err := l.Append(Record{Op: opMax + 1}); err != ErrBadOp {
		t.Fatalf("out-of-range op: %v", err)
	}
	big := Record{Op: OpSchedule, ID: 1, Payload: bytes.Repeat([]byte("x"), MaxPayload+1)}
	if _, err := l.Append(big); err != ErrPayloadTooLarge {
		t.Fatalf("oversized payload: %v", err)
	}
	l.Close()
	if _, err := l.Append(Record{Op: OpSchedule, ID: 1}); err != ErrClosed {
		t.Fatalf("append after close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestDuplicateRecordsIdempotent(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	sched := Record{Op: OpSchedule, ID: 1, Deadline: 100, Payload: []byte("p")}
	for _, r := range []Record{sched, sched, {Op: OpFire, ID: 1}, {Op: OpFire, ID: 1}} {
		if _, err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	_, res := mustOpen(t, dir, Options{})
	st := res.State
	if st.Scheduled != 1 || st.Fired != 1 || st.Outstanding() != 0 {
		t.Fatalf("duplicates double-counted: scheduled=%d fired=%d outstanding=%d",
			st.Scheduled, st.Fired, st.Outstanding())
	}
}

func TestRecordEncodingRoundTrip(t *testing.T) {
	recs := []Record{
		{Op: OpSchedule, Class: 3, ID: ^uint64(0), Lease: 42, Deadline: -1, Payload: []byte{0, 1, 2}},
		{Op: OpSeal},
		{Op: OpLeaseExpire, ID: 1},
	}
	var b []byte
	for _, r := range recs {
		b = appendFrame(b, r)
	}
	off := 0
	for i, want := range recs {
		got, n, ok := decodeFrame(b[off:])
		if !ok {
			t.Fatalf("frame %d failed to decode", i)
		}
		if got.Op != want.Op || got.Class != want.Class || got.ID != want.ID ||
			got.Lease != want.Lease || got.Deadline != want.Deadline ||
			!bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
		off += n
	}
	if off != len(b) {
		t.Fatalf("decoded %d of %d bytes", off, len(b))
	}
}

func TestSnapshotDirLayout(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	l.Snapshot(nil)
	l.Snapshot(nil)
	l.Close()
	ents, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{walPath(dir, 2): true, snapPath(dir, 2): true}
	for _, e := range ents {
		if !want[e] {
			t.Fatalf("unexpected file after double snapshot: %s (all: %v)", e, ents)
		}
		delete(want, e)
	}
	if len(want) != 0 {
		t.Fatalf("missing files: %v", want)
	}
}
