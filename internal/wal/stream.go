package wal

// The follow API: the read surface internal/replica streams a warm
// standby from. The contract is the commit point — ReadDurable serves
// only bytes an fsync is known to cover, so a follower can never apply
// (and a promoted standby can never fire) a record whose admission was
// not yet acknowledged to a client. Offsets are plain byte offsets into
// one epoch's segment; the durable boundary only ever advances by whole
// frames, so any (epoch, durable-bounded offset) cursor a follower
// derives by decoding frames is frame-aligned by construction.

import (
	"errors"
	"fmt"
	"io"
	"os"
)

// Follow-API errors.
var (
	// ErrEpochGone reports a cursor into an epoch that is no longer the
	// active segment: a snapshot rotated it away, and its records now
	// exist only as part of the new epoch's seed. The follower must
	// re-seed from the current snapshot.
	ErrEpochGone = errors.New("wal: epoch no longer served; re-seed from the current snapshot")
	// ErrBadOffset reports a cursor beyond the durable boundary — a
	// follower that somehow got ahead of the primary's commit point,
	// which can only mean cursor corruption. Re-seed.
	ErrBadOffset = errors.New("wal: offset beyond durable bytes")
)

// FollowPos is the streamer's view of the durable boundary: what a
// follower needs to compute its lag in both bytes and records.
type FollowPos struct {
	// Epoch is the active segment's epoch.
	Epoch uint64
	// DurableBytes is the segment prefix on stable storage — the
	// furthest a follower may read.
	DurableBytes int64
	// SegBaseLSN is the LSN of the last record not in this segment;
	// DurableLSN the last durable record. A follower that has applied k
	// frames of the segment is DurableLSN-(SegBaseLSN+k) records behind.
	SegBaseLSN, DurableLSN LSN
}

// FollowPos reports the current durable boundary.
func (l *Log) FollowPos() FollowPos {
	l.mu.Lock()
	defer l.mu.Unlock()
	return FollowPos{
		Epoch:        l.epoch,
		DurableBytes: l.durableSize,
		SegBaseLSN:   l.segBase,
		DurableLSN:   l.durable,
	}
}

// ReadDurable returns up to max bytes of the active segment starting at
// byte offset off, bounded by the durable prefix. A nil, nil return
// means the follower is caught up (off == durable boundary); the caller
// long-polls. The read happens on a private descriptor outside the log
// mutex, so streaming never stalls appends or fsyncs.
func (l *Log) ReadDurable(epoch uint64, off int64, max int) ([]byte, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, ErrClosed
	}
	if epoch != l.epoch {
		l.mu.Unlock()
		return nil, ErrEpochGone
	}
	durable := l.durableSize
	dir := l.dir
	l.mu.Unlock()

	if off < 0 || off > durable {
		return nil, ErrBadOffset
	}
	if off == durable {
		return nil, nil
	}
	n := durable - off
	if max > 0 && n > int64(max) {
		n = int64(max)
	}
	f, err := os.Open(walPath(dir, epoch))
	if err != nil {
		if os.IsNotExist(err) {
			// Rotated away between the boundary check and the open.
			return nil, ErrEpochGone
		}
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, n)
	m, err := f.ReadAt(buf, off)
	if m > 0 {
		// A short read of durable bytes cannot happen on a healthy file,
		// but serving the prefix we did get is always safe: the follower
		// advances by whole decoded frames and re-requests the rest.
		return buf[:m], nil
	}
	if err != nil && err != io.EOF {
		return nil, err
	}
	return nil, nil
}

// SnapshotSeed returns the active epoch and its seed snapshot's frames
// (nil for epoch 0, which has no seed). The epoch is re-checked after
// the read so a rotation that raced the call can never pair one epoch's
// number with another's seed.
func (l *Log) SnapshotSeed() (uint64, []byte, error) {
	for tries := 0; tries < 8; tries++ {
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return 0, nil, ErrClosed
		}
		epoch := l.epoch
		dir := l.dir
		l.mu.Unlock()
		if epoch == 0 {
			return 0, nil, nil
		}
		data, err := os.ReadFile(snapPath(dir, epoch))
		if err != nil {
			if os.IsNotExist(err) {
				continue // rotated mid-call; retry against the new epoch
			}
			return 0, nil, err
		}
		l.mu.Lock()
		same := l.epoch == epoch
		l.mu.Unlock()
		if same {
			return epoch, data, nil
		}
	}
	return 0, nil, fmt.Errorf("wal: snapshot seed kept racing rotation")
}

// FrameDecoder incrementally decodes a byte stream of frames — the
// follower's half of the replication channel. Feed bytes with Write;
// pop records with Next. Unlike the file reader, it distinguishes "the
// next frame is not complete yet" (Next returns n == 0, err == nil)
// from "these bytes can never decode" (ErrCorruptFrame) — a stream must
// wait for the former and resynchronize on the latter, where a file
// reader treats both as the end of the log.
type FrameDecoder struct {
	buf []byte
	off int // consumed prefix of buf
}

// Write appends p to the undecoded buffer. It never fails; the error
// return satisfies io.Writer.
func (d *FrameDecoder) Write(p []byte) (int, error) {
	// Compact the consumed prefix before growing, so a long stream does
	// not accrete every byte it ever saw.
	if d.off > 0 && (d.off >= len(d.buf) || d.off > 4096) {
		d.buf = append(d.buf[:0], d.buf[d.off:]...)
		d.off = 0
	}
	d.buf = append(d.buf, p...)
	return len(p), nil
}

// Next decodes and consumes the next frame. n is the frame's on-stream
// byte length (0 with a nil error means the buffer holds only a partial
// frame — feed more bytes). ErrCorruptFrame poisons the buffered tail;
// the caller must Reset and re-fetch from its last good cursor.
func (d *FrameDecoder) Next() (rec Record, n int, err error) {
	rec, n, err = scanFrame(d.buf[d.off:])
	if err != nil {
		if err == errShortFrame {
			return Record{}, 0, nil
		}
		return Record{}, 0, err
	}
	d.off += n
	return rec, n, nil
}

// Buffered reports how many undecoded bytes the decoder holds.
func (d *FrameDecoder) Buffered() int { return len(d.buf) - d.off }

// Reset discards all buffered bytes.
func (d *FrameDecoder) Reset() { d.buf = d.buf[:0]; d.off = 0 }

// FrameSize reports the on-stream size of rec's frame — what a
// follower's cursor advances by per applied record.
func FrameSize(rec Record) int { return frameSize(rec) }
