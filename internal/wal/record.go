// Package wal is the durability layer under cmd/twd: an append-only,
// length-prefixed, CRC32-framed write-ahead log of timer admissions,
// cancellations, resets, firings, and lease transitions, with
// group-commit fsync batching, epoch snapshots for compaction, and a
// reader that recovers cleanly from a torn or truncated tail.
//
// The paper's timer facility is a building block for systems that must
// not lose armed timers across failures; Lawn-style TTL/session-expiry
// services (arXiv:1906.10860) front millions of clients with exactly
// this deployment shape, and re-deriving timer state on restart is the
// cost a replayable admission log eliminates (cf. CHRONOS,
// arXiv:2503.01444). The log records wall-clock deadlines — not
// intervals — so replay after any amount of downtime reconstructs the
// exact outstanding set: timers whose deadline passed while the process
// was down fire immediately with their recorded lag.
//
// # Frame format
//
// Every record is one frame:
//
//	| len uint32 LE | crc uint32 LE | body (len bytes) |
//
// where crc is the CRC-32C (Castagnoli) checksum of the body and the
// body is a fixed header plus the payload:
//
//	| op u8 | class u8 | id u64 LE | lease u64 LE | deadline i64 LE | payload |
//
// A reader accepts a frame only if the length is sane and the checksum
// matches; the first frame that fails either test ends the log — a torn
// or truncated tail (a crash mid-write, a half-synced page) costs the
// frames at and after the tear, never the valid prefix before it.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Op is a record's operation kind.
type Op uint8

// Record operations. The zero value is invalid so that zero-filled disk
// blocks (a common torn-tail shape) can never decode as a record.
const (
	// OpSchedule admits one timer: ID, Class, owning Lease (0 = none),
	// absolute wall Deadline (unix nanoseconds), and the opaque Payload
	// the client attached.
	OpSchedule Op = 1 + iota
	// OpCancel cancels timer ID before its deadline.
	OpCancel
	// OpReset moves timer ID's deadline to Deadline.
	OpReset
	// OpFire records that timer ID's expiry was delivered. A timer with
	// no fire and no cancel record is outstanding and replays on boot.
	OpFire
	// OpLeaseGrant creates lease ID expiring at Deadline.
	OpLeaseGrant
	// OpLeaseRenew moves lease ID's expiry to Deadline.
	OpLeaseRenew
	// OpLeaseExpire records that lease ID expired or was released; the
	// daemon logs an OpCancel per garbage-collected timer alongside it.
	OpLeaseExpire
	// OpSeal marks a clean shutdown: every in-memory transition reached
	// the log before the process exited. It is informational — recovery
	// is identical either way — and any later record voids it.
	OpSeal
	// OpHighWater pins the timer-ID allocator's high-water mark: ID is
	// the largest timer ID ever issued. Snapshots write one so that
	// compaction — which discards settled history — cannot let a restart
	// re-issue the ID of an already-acked fired or cancelled timer.
	OpHighWater

	opMax = OpHighWater
)

// String returns the op's name.
func (o Op) String() string {
	switch o {
	case OpSchedule:
		return "schedule"
	case OpCancel:
		return "cancel"
	case OpReset:
		return "reset"
	case OpFire:
		return "fire"
	case OpLeaseGrant:
		return "lease-grant"
	case OpLeaseRenew:
		return "lease-renew"
	case OpLeaseExpire:
		return "lease-expire"
	case OpSeal:
		return "seal"
	case OpHighWater:
		return "high-water"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Record is one logged transition. ID is the daemon-assigned timer or
// lease identity (stable across restarts, unlike the facility's
// in-memory IDs); Deadline is an absolute wall-clock instant in unix
// nanoseconds, the representation that survives downtime.
type Record struct {
	Op       Op
	Class    uint8
	ID       uint64
	Lease    uint64
	Deadline int64
	Payload  []byte
}

// Frame geometry.
const (
	frameHeaderSize  = 8  // len + crc
	recordHeaderSize = 26 // op + class + id + lease + deadline
	// MaxPayload bounds one record's payload. The bound is a recovery
	// aid as much as a resource cap: a corrupt length field can never
	// make the reader attempt a multi-gigabyte allocation.
	MaxPayload = 1 << 20
	maxBody    = recordHeaderSize + MaxPayload
)

// castagnoli is the CRC-32C table; hardware-accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Errors surfaced by encoding and recovery.
var (
	// ErrPayloadTooLarge reports a record payload over MaxPayload.
	ErrPayloadTooLarge = errors.New("wal: payload exceeds MaxPayload")
	// ErrBadOp reports an attempt to append a record with an invalid op.
	ErrBadOp = errors.New("wal: invalid record op")
	// ErrClosed reports an operation on a closed log.
	ErrClosed = errors.New("wal: log is closed")
	// ErrFailed reports an operation on a log that hit an unrecoverable
	// I/O error (a failed fsync, or a failed write that could not be
	// repaired). Durability can no longer be promised; the process must
	// restart and recover from disk.
	ErrFailed = errors.New("wal: log failed; restart and recover")
	// ErrCorruptFrame reports bytes that can never extend into a valid
	// frame: an insane length field, a checksum mismatch over a complete
	// body, or an invalid op. A streaming reader must resynchronize (or
	// re-seed) — waiting for more bytes cannot help.
	ErrCorruptFrame = errors.New("wal: corrupt frame")
	// errShortFrame reports a prefix that could still become a valid
	// frame once more bytes arrive. Internal: FrameDecoder.Next maps it
	// to the (zero, 0, nil) "need more input" return.
	errShortFrame = errors.New("wal: short frame")
)

// appendFrame encodes rec as one frame onto b and returns the extended
// slice.
func appendFrame(b []byte, rec Record) []byte {
	bodyLen := recordHeaderSize + len(rec.Payload)
	b = binary.LittleEndian.AppendUint32(b, uint32(bodyLen))
	crcAt := len(b)
	b = append(b, 0, 0, 0, 0) // crc placeholder
	bodyAt := len(b)
	b = append(b, byte(rec.Op), rec.Class)
	b = binary.LittleEndian.AppendUint64(b, rec.ID)
	b = binary.LittleEndian.AppendUint64(b, rec.Lease)
	b = binary.LittleEndian.AppendUint64(b, uint64(rec.Deadline))
	b = append(b, rec.Payload...)
	crc := crc32.Checksum(b[bodyAt:], castagnoli)
	binary.LittleEndian.PutUint32(b[crcAt:], crc)
	return b
}

// frameSize reports the on-disk size of rec's frame.
func frameSize(rec Record) int {
	return frameHeaderSize + recordHeaderSize + len(rec.Payload)
}

// decodeFrame decodes the frame at the start of b. ok reports whether a
// complete, checksum-valid frame was present; n is the frame's total
// length when ok. A false return means the tail from here on is torn,
// truncated, or corrupt — a file reader cannot distinguish these, and
// does not need to: the log ends at the last valid frame.
func decodeFrame(b []byte) (rec Record, n int, ok bool) {
	rec, n, err := scanFrame(b)
	return rec, n, err == nil
}

// scanFrame decodes the frame at the start of b, distinguishing a
// prefix that needs more bytes (errShortFrame) from bytes that can
// never become a frame (ErrCorruptFrame). A byte-stream reader needs
// the distinction a file reader doesn't: short means wait, corrupt
// means resynchronize.
func scanFrame(b []byte) (rec Record, n int, err error) {
	if len(b) < frameHeaderSize {
		return rec, 0, errShortFrame
	}
	bodyLen := int(binary.LittleEndian.Uint32(b))
	if bodyLen < recordHeaderSize || bodyLen > maxBody {
		return rec, 0, ErrCorruptFrame
	}
	if len(b) < frameHeaderSize+bodyLen {
		return rec, 0, errShortFrame
	}
	crc := binary.LittleEndian.Uint32(b[4:])
	body := b[frameHeaderSize : frameHeaderSize+bodyLen]
	if crc32.Checksum(body, castagnoli) != crc {
		return rec, 0, ErrCorruptFrame
	}
	rec.Op = Op(body[0])
	if rec.Op == 0 || rec.Op > opMax {
		return rec, 0, ErrCorruptFrame
	}
	rec.Class = body[1]
	rec.ID = binary.LittleEndian.Uint64(body[2:])
	rec.Lease = binary.LittleEndian.Uint64(body[10:])
	rec.Deadline = int64(binary.LittleEndian.Uint64(body[18:]))
	if p := body[recordHeaderSize:]; len(p) > 0 {
		rec.Payload = append([]byte(nil), p...)
	}
	return rec, frameHeaderSize + bodyLen, nil
}
