// Package hashwheel implements Extension 1 of the paper (section 6.1):
// hashing arbitrary-sized timer intervals into a fixed-size timing wheel.
//
// The interval is divided by the table size: the remainder (low-order
// bits) added to the current-time pointer yields the slot index, and the
// quotient (high-order bits) is stored with the timer as a revolution
// count. Two bucket disciplines follow:
//
//   - Scheme 5 keeps each bucket sorted (like a miniature Scheme 2
//     queue): PER_TICK_BOOKKEEPING inspects only the bucket head, but
//     START_TIMER is O(n) worst case and O(1) average only if
//     n < TableSize and the hash spreads timers evenly.
//   - Scheme 6 keeps buckets unsorted: START_TIMER and STOP_TIMER are
//     O(1) worst case, and PER_TICK_BOOKKEEPING does n/TableSize work on
//     average regardless of the hash distribution — the hash controls
//     only the burstiness (variance) of the per-tick latency.
//
// Section 6.1.2 argues the hash should just be the remainder after
// dividing by a power of two (an AND instruction); this package supports
// any table size but uses the mask fast path when the size is a power of
// two (the mask-vs-mod ablation benchmark quantifies the difference).
package hashwheel

import (
	"fmt"

	"timingwheels/internal/bitmap"
	"timingwheels/internal/core"
	"timingwheels/internal/ilist"
	"timingwheels/internal/metrics"
)

// entry is one outstanding hashed-wheel timer.
type entry struct {
	id   core.ID
	when core.Tick // absolute expiry, for Scheme 5 ordering and slot math
	// rounds is Scheme 6's stored quotient: the number of times the
	// cursor must pass this slot before the timer expires.
	rounds  int64
	cb      core.Callback
	pcb     core.PayloadCallback // fast path: shared callback + payload
	payload any
	state   core.State
	// pooled marks entries started through StartTimerPayload: they are
	// recycled onto the table's free list as soon as they fire or are
	// stopped. Plain StartTimer entries are never recycled, because
	// their handles carry no ID guard against reuse.
	pooled bool
	owner  facility
	node   ilist.Node[*entry]
}

// TimerID implements core.Handle.
func (e *entry) TimerID() core.ID { return e.id }

// fire runs the entry's expiry action through whichever callback form it
// was started with.
func (e *entry) fire() {
	if e.pcb != nil {
		e.pcb(e.id, e.payload)
		return
	}
	e.cb(e.id)
}

// facility is the common identity type for handle-ownership checks.
type facility interface{ core.Facility }

// table is the shared slot array and index math of Schemes 5 and 6.
type table struct {
	slots []ilist.List[*entry]
	// occ tracks non-empty slots so Advance can skip idle spans (an
	// occupancy-bitmap extension the kernel descendants of this scheme
	// use; see package bitmap).
	occ    *bitmap.Set
	mask   int // len(slots)-1 if power of two, else -1
	cursor int
	now    core.Tick
	nextID core.ID
	n      int
	cost   *metrics.Cost
	// free is the entry free-list for the StartTimerPayload fast path.
	// Entries parked here keep their last id and terminal state, so a
	// stale StopTimerID against them fails cleanly until reuse assigns a
	// fresh never-repeated id.
	free []*entry
}

// acquire returns a recycled entry (reset to pending) or a fresh one.
func (t *table) acquire() *entry {
	if n := len(t.free); n > 0 {
		e := t.free[n-1]
		t.free[n-1] = nil
		t.free = t.free[:n-1]
		e.state = core.StatePending
		return e
	}
	e := &entry{}
	e.node.Value = e
	return e
}

// release parks a pooled entry on the free list. The caller guarantees
// the node is detached and the entry reached a terminal state.
func (t *table) release(e *entry) {
	e.cb = nil
	e.pcb = nil
	e.payload = nil
	t.free = append(t.free, e)
}

func newTable(size int, cost *metrics.Cost) table {
	if size < 1 {
		panic(fmt.Sprintf("hashwheel: table size must be >= 1, got %d", size))
	}
	t := table{slots: make([]ilist.List[*entry], size), occ: bitmap.New(size), mask: -1, cost: cost}
	if size&(size-1) == 0 {
		t.mask = size - 1
	}
	for i := range t.slots {
		t.slots[i].Init(cost)
	}
	return t
}

// index reduces an absolute tick to a slot index — the AND instruction of
// section 6.1.2 when the table size is a power of two.
func (t *table) index(when core.Tick) int {
	if t.mask >= 0 {
		return int(uint64(when) & uint64(t.mask))
	}
	i := int(when % core.Tick(len(t.slots)))
	if i < 0 {
		i += len(t.slots)
	}
	return i
}

// advance moves the cursor one slot and returns the slot to inspect.
func (t *table) advance() *ilist.List[*entry] {
	t.now++
	t.cursor++
	if t.cursor == len(t.slots) {
		t.cursor = 0
	}
	t.cost.Read(1)    // load slot header
	t.cost.Compare(1) // zero test
	return &t.slots[t.cursor]
}

// pushSlot inserts a node at the head of slot i and marks it occupied.
func (t *table) pushSlot(i int, n *ilist.Node[*entry]) {
	t.slots[i].PushFront(n)
	t.occ.Set(i)
}

// removeSlot unlinks a node from slot i, clearing the occupancy bit when
// the slot empties.
func (t *table) removeSlot(i int, n *ilist.Node[*entry]) {
	t.slots[i].Remove(n)
	if t.slots[i].Empty() {
		t.occ.Clear(i)
	}
}

// stopEntry cancels an outstanding entry: shared STOP_TIMER logic for
// every hashed-wheel variant. A pooled entry is recycled immediately
// when it was still linked into a slot; an entry that is detached but
// pending sits in a Tick batch, and the batch loop recycles it instead.
func (t *table) stopEntry(e *entry) error {
	if e.state != core.StatePending {
		return core.ErrTimerNotPending
	}
	e.state = core.StateStopped
	if e.node.Attached() {
		t.removeSlot(t.index(e.when), &e.node)
		t.n--
		if e.pooled {
			t.release(e)
		}
	}
	return nil
}

// stopEntryID is stopEntry guarded by the never-reused timer ID: a
// handle whose entry has been recycled and reissued carries a different
// id and fails with ErrTimerNotPending instead of cancelling the new
// occupant.
func (t *table) stopEntryID(e *entry, id core.ID) error {
	if e.id != id {
		return core.ErrTimerNotPending
	}
	return t.stopEntry(e)
}

// jumpTo moves the clock and cursor directly to time tk; every slot in
// between is known empty.
func (t *table) jumpTo(tk core.Tick) {
	delta := tk - t.now
	if delta <= 0 {
		return
	}
	t.now = tk
	t.cursor = int((core.Tick(t.cursor) + delta) % core.Tick(len(t.slots)))
	t.cost.Read(1) // one bitmap probe stands in for the skipped scan
}

// nextOccupiedVisit reports the next time the cursor will land on a
// non-empty slot; ok is false when the table is empty.
func (t *table) nextOccupiedVisit() (core.Tick, bool) {
	if t.n == 0 {
		return 0, false
	}
	start := t.cursor + 1
	if start == len(t.slots) {
		start = 0
	}
	d, ok := t.occ.NextCyclic(start)
	if !ok {
		return 0, false
	}
	return t.now + core.Tick(d) + 1, true
}

// Size reports the number of slots (the TableSize of sections 6.1 and 7).
func (t *table) Size() int { return len(t.slots) }

// Now reports the current virtual time.
func (t *table) Now() core.Tick { return t.now }

// Len reports the number of outstanding timers.
func (t *table) Len() int { return t.n }

// Occupancy returns the number of timers in each slot, for hash-spread
// diagnostics in experiment E5.
func (t *table) Occupancy() []int {
	occ := make([]int, len(t.slots))
	for i := range t.slots {
		occ[i] = t.slots[i].Len()
	}
	return occ
}

// Cursor reports the slot index the current-time pointer points at.
func (t *table) Cursor() int { return t.cursor }

// BucketRounds returns the stored high-order bits (revolution counts) of
// the timers in slot i, in list order — the quantities Figure 9 shows
// hanging off each hash bucket.
func (t *table) BucketRounds(i int) []int64 {
	var out []int64
	t.slots[i].Do(func(n *ilist.Node[*entry]) {
		out = append(out, n.Value.rounds)
	})
	return out
}
