package hashwheel

import (
	"timingwheels/internal/core"
	"timingwheels/internal/metrics"
)

// Scheme6 is the hash table with unsorted lists in each bucket
// (section 6.1.2) — the scheme the paper implemented in VAX MACRO-11 and
// recommends (with Scheme 7) for a general timer module.
//
//	START_TIMER            O(1) worst case
//	STOP_TIMER             O(1) worst case
//	PER_TICK_BOOKKEEPING   O(1) average when n < TableSize; every
//	                       TableSize ticks each living timer is
//	                       decremented once, so the average per-tick work
//	                       is n/TableSize regardless of hash spread.
type Scheme6 struct {
	table
	batch []*entry
}

// NewScheme6 returns an unsorted-bucket hashed wheel with the given table
// size, charging costs to cost (may be nil). Power-of-two sizes use the
// AND-mask index the paper recommends.
func NewScheme6(size int, cost *metrics.Cost) *Scheme6 {
	return &Scheme6{table: newTable(size, cost)}
}

// Name returns "scheme6".
func (s *Scheme6) Name() string { return "scheme6" }

// rounds computes the stored quotient for an interval d: the number of
// cursor passes over the slot before the pass on which the timer fires.
// For d an exact multiple of the table size the slot equals the cursor
// position and the first pass happens a full revolution later, so the
// quotient is (d-1)/size rather than the naive d/size.
func (s *Scheme6) roundsFor(d core.Tick) int64 {
	return int64((d - 1) / core.Tick(s.Size()))
}

// StartTimer hashes the expiry into a slot and pushes the timer at the
// head of that slot's unordered list: O(1) always.
func (s *Scheme6) StartTimer(interval core.Tick, cb core.Callback) (core.Handle, error) {
	if err := core.CheckInterval(interval, cb); err != nil {
		return nil, err
	}
	return s.insert(interval, cb, nil, nil, false), nil
}

// StartTimerPayload implements core.PayloadStarter: like StartTimer, but
// the entry carries an opaque payload, fires through the shared cb, and
// is recycled on the facility's free list at fire/stop time.
func (s *Scheme6) StartTimerPayload(interval core.Tick, payload any, cb core.PayloadCallback) (core.Handle, error) {
	if cb == nil {
		return nil, core.ErrNilCallback
	}
	if interval < 1 {
		return nil, core.ErrNonPositiveInterval
	}
	return s.insert(interval, nil, cb, payload, true), nil
}

// insert links one validated timer into its slot.
func (s *Scheme6) insert(interval core.Tick, cb core.Callback, pcb core.PayloadCallback, payload any, pooled bool) *entry {
	e := s.acquire()
	e.id = s.nextID
	s.nextID++
	e.when = s.now + interval
	e.rounds = s.roundsFor(interval)
	e.cb, e.pcb, e.payload = cb, pcb, payload
	e.pooled = pooled
	e.owner = s
	s.cost.Read(1)  // slot header
	s.cost.Write(1) // store high-order bits
	s.pushSlot(s.index(e.when), &e.node)
	s.n++
	return e
}

// StopTimer unlinks the timer from its bucket in O(1).
func (s *Scheme6) StopTimer(h core.Handle) error {
	e, ok := h.(*entry)
	if !ok || e.owner != s {
		return core.ErrForeignHandle
	}
	return s.stopEntry(e)
}

// StopTimerID implements core.IDStopper: StopTimer guarded against
// recycled-handle ABA by the never-reused timer ID.
func (s *Scheme6) StopTimerID(h core.Handle, id core.ID) error {
	e, ok := h.(*entry)
	if !ok || e.owner != s {
		return core.ErrForeignHandle
	}
	return s.stopEntryID(e, id)
}

// Tick advances the cursor; if there is a list in the new slot, it
// decrements the high-order bits of every element exactly as in
// Scheme 1, firing those that reach zero.
func (s *Scheme6) Tick() int {
	slot := s.advance()
	if slot.Empty() {
		return 0
	}
	s.batch = s.batch[:0]
	for n := slot.Front(); n != nil; {
		next := n.Next()
		e := n.Value
		s.cost.Read(1)
		s.cost.Compare(1)
		if e.rounds == 0 {
			slot.Remove(n)
			s.n--
			s.batch = append(s.batch, e)
		} else {
			s.cost.Write(1)
			e.rounds--
		}
		n = next
	}
	if slot.Empty() {
		s.occ.Clear(s.cursor)
	}
	fired := 0
	for _, e := range s.batch {
		if e.state == core.StatePending {
			e.state = core.StateFired
			fired++
			e.fire()
		}
		if e.pooled {
			s.release(e)
		}
	}
	return fired
}

// Advance implements core.Advancer: the cursor jumps between occupied
// slots (every occupied slot must still be visited once per revolution
// to decrement its residents' high-order bits, but empty slots cost one
// bitmap probe per run instead of one step each).
func (s *Scheme6) Advance(n core.Tick) int {
	fired := 0
	target := s.now + n
	for s.now < target {
		next, ok := s.nextOccupiedVisit()
		if !ok || next > target {
			s.jumpTo(target)
			return fired
		}
		s.jumpTo(next - 1)
		fired += s.Tick()
	}
	return fired
}

var (
	_ core.Facility       = (*Scheme6)(nil)
	_ core.Advancer       = (*Scheme6)(nil)
	_ core.PayloadStarter = (*Scheme6)(nil)
	_ core.IDStopper      = (*Scheme6)(nil)
)

// Scheme6Absolute is the ablation variant of Scheme 6 that stores the
// absolute expiry time and COMPAREs instead of storing the quotient and
// DECREMENTing (the choice discussed at the end of section 3.1). Per-tick
// work touches the same entries but performs no writes to them, so it
// trades a wider stored field for fewer memory writes.
type Scheme6Absolute struct {
	table
	batch []*entry
}

// NewScheme6Absolute returns the COMPARE-variant hashed wheel.
func NewScheme6Absolute(size int, cost *metrics.Cost) *Scheme6Absolute {
	return &Scheme6Absolute{table: newTable(size, cost)}
}

// Name returns "scheme6-abs".
func (s *Scheme6Absolute) Name() string { return "scheme6-abs" }

// StartTimer hashes the expiry into a slot in O(1).
func (s *Scheme6Absolute) StartTimer(interval core.Tick, cb core.Callback) (core.Handle, error) {
	if err := core.CheckInterval(interval, cb); err != nil {
		return nil, err
	}
	return s.insert(interval, cb, nil, nil, false), nil
}

// StartTimerPayload implements core.PayloadStarter (see Scheme6).
func (s *Scheme6Absolute) StartTimerPayload(interval core.Tick, payload any, cb core.PayloadCallback) (core.Handle, error) {
	if cb == nil {
		return nil, core.ErrNilCallback
	}
	if interval < 1 {
		return nil, core.ErrNonPositiveInterval
	}
	return s.insert(interval, nil, cb, payload, true), nil
}

// insert links one validated timer into its slot.
func (s *Scheme6Absolute) insert(interval core.Tick, cb core.Callback, pcb core.PayloadCallback, payload any, pooled bool) *entry {
	e := s.acquire()
	e.id = s.nextID
	s.nextID++
	e.when = s.now + interval
	e.rounds = 0
	e.cb, e.pcb, e.payload = cb, pcb, payload
	e.pooled = pooled
	e.owner = s
	s.cost.Read(1)
	s.cost.Write(1)
	s.pushSlot(s.index(e.when), &e.node)
	s.n++
	return e
}

// StopTimer unlinks the timer from its bucket in O(1).
func (s *Scheme6Absolute) StopTimer(h core.Handle) error {
	e, ok := h.(*entry)
	if !ok || e.owner != s {
		return core.ErrForeignHandle
	}
	return s.stopEntry(e)
}

// StopTimerID implements core.IDStopper (see Scheme6).
func (s *Scheme6Absolute) StopTimerID(h core.Handle, id core.ID) error {
	e, ok := h.(*entry)
	if !ok || e.owner != s {
		return core.ErrForeignHandle
	}
	return s.stopEntryID(e, id)
}

// Tick compares the absolute expiry of every element in the slot against
// the clock; no per-entry writes happen for surviving timers.
func (s *Scheme6Absolute) Tick() int {
	slot := s.advance()
	if slot.Empty() {
		return 0
	}
	s.batch = s.batch[:0]
	for n := slot.Front(); n != nil; {
		next := n.Next()
		e := n.Value
		s.cost.Read(1)
		s.cost.Compare(1)
		if e.when <= s.now {
			slot.Remove(n)
			s.n--
			s.batch = append(s.batch, e)
		}
		n = next
	}
	if slot.Empty() {
		s.occ.Clear(s.cursor)
	}
	fired := 0
	for _, e := range s.batch {
		if e.state == core.StatePending {
			e.state = core.StateFired
			fired++
			e.fire()
		}
		if e.pooled {
			s.release(e)
		}
	}
	return fired
}

// Advance implements core.Advancer by skipping empty slots.
func (s *Scheme6Absolute) Advance(n core.Tick) int {
	fired := 0
	target := s.now + n
	for s.now < target {
		next, ok := s.nextOccupiedVisit()
		if !ok || next > target {
			s.jumpTo(target)
			return fired
		}
		s.jumpTo(next - 1)
		fired += s.Tick()
	}
	return fired
}

var (
	_ core.Facility       = (*Scheme6Absolute)(nil)
	_ core.Advancer       = (*Scheme6Absolute)(nil)
	_ core.PayloadStarter = (*Scheme6Absolute)(nil)
	_ core.IDStopper      = (*Scheme6Absolute)(nil)
)
