package hashwheel

import (
	"timingwheels/internal/core"
	"timingwheels/internal/ilist"
	"timingwheels/internal/metrics"
)

// Scheme5 is the hash table with sorted lists in each bucket
// (section 6.1.1): each bucket is maintained exactly as a miniature
// Scheme 2 ordered queue, so PER_TICK_BOOKKEEPING inspects only the
// bucket head while START_TIMER pays an insertion-sort step.
//
//	START_TIMER            O(1) average iff n < TableSize and the hash
//	                       distributes uniformly; O(n) worst case
//	STOP_TIMER             O(1)
//	PER_TICK_BOOKKEEPING   O(1) average and worst case, except when
//	                       multiple timers expire at once
//
// In sorting terms, Scheme 5 is a bucket sort on the low-order bits
// followed by an insertion sort within each bucket. The paper's verdict
// (section 7): it "depends too much on the hash distribution to be
// generally useful" — experiment E5 reproduces that sensitivity.
//
// Entries store the absolute expiry time (the COMPARE option of
// section 3.1), which keeps bucket order meaningful across revolutions.
type Scheme5 struct {
	table
	// SearchSteps / Starts mirror Scheme2's instrumentation: elements
	// examined per insertion, for the E5 average-latency measurement.
	SearchSteps uint64
	Starts      uint64
}

// NewScheme5 returns a sorted-bucket hashed wheel with the given table
// size, charging costs to cost (may be nil).
func NewScheme5(size int, cost *metrics.Cost) *Scheme5 {
	return &Scheme5{table: newTable(size, cost)}
}

// Name returns "scheme5".
func (s *Scheme5) Name() string { return "scheme5" }

// StartTimer hashes the expiry into a slot and walks that bucket to the
// sorted position (ascending expiry, FIFO on ties).
func (s *Scheme5) StartTimer(interval core.Tick, cb core.Callback) (core.Handle, error) {
	if err := core.CheckInterval(interval, cb); err != nil {
		return nil, err
	}
	return s.insert(interval, cb, nil, nil, false), nil
}

// StartTimerPayload implements core.PayloadStarter: the sorted insert of
// StartTimer, but the entry carries an opaque payload and is recycled on
// the table's free list once it fires or is stopped.
func (s *Scheme5) StartTimerPayload(interval core.Tick, payload any, cb core.PayloadCallback) (core.Handle, error) {
	if cb == nil {
		return nil, core.ErrNilCallback
	}
	if interval < 1 {
		return nil, core.ErrNonPositiveInterval
	}
	return s.insert(interval, nil, cb, payload, true), nil
}

// insert sorts one validated timer into its bucket (ascending expiry,
// FIFO on ties).
func (s *Scheme5) insert(interval core.Tick, cb core.Callback, pcb core.PayloadCallback, payload any, pooled bool) *entry {
	e := s.acquire()
	e.id = s.nextID
	s.nextID++
	e.when = s.now + interval
	e.rounds = 0
	e.cb, e.pcb, e.payload = cb, pcb, payload
	e.pooled = pooled
	e.owner = s
	bucket := &s.slots[s.index(e.when)]
	s.cost.Read(1)
	steps := uint64(0)
	inserted := false
	for n := bucket.Front(); n != nil; n = n.Next() {
		steps++
		s.cost.Read(1)
		s.cost.Compare(1)
		if n.Value.when > e.when {
			bucket.InsertBefore(&e.node, n)
			inserted = true
			break
		}
	}
	if !inserted {
		bucket.PushBack(&e.node)
	}
	s.occ.Set(s.index(e.when))
	s.SearchSteps += steps
	s.Starts++
	s.n++
	return e
}

// StopTimer unlinks the timer from its bucket in O(1).
func (s *Scheme5) StopTimer(h core.Handle) error {
	e, ok := h.(*entry)
	if !ok || e.owner != s {
		return core.ErrForeignHandle
	}
	return s.stopEntry(e)
}

// StopTimerID implements core.IDStopper: StopTimer guarded against
// recycled-handle ABA by the never-reused timer ID.
func (s *Scheme5) StopTimerID(h core.Handle, id core.ID) error {
	e, ok := h.(*entry)
	if !ok || e.owner != s {
		return core.ErrForeignHandle
	}
	return s.stopEntryID(e, id)
}

// Tick advances the cursor and, as in Scheme 2, inspects only the head of
// the bucket's sorted list, firing heads while they are due.
func (s *Scheme5) Tick() int {
	slot := s.advance()
	fired := 0
	for {
		head := slot.Front()
		if head == nil {
			return fired
		}
		s.cost.Read(1)
		s.cost.Compare(1)
		e := head.Value
		if e.when > s.now {
			return fired
		}
		slot.Remove(head)
		if slot.Empty() {
			s.occ.Clear(s.cursor)
		}
		s.n--
		if e.state == core.StatePending {
			e.state = core.StateFired
			fired++
			e.fire()
		}
		if e.pooled {
			s.release(e)
		}
	}
}

// AverageSearch reports the mean number of elements examined per
// StartTimer call since construction.
func (s *Scheme5) AverageSearch() float64 {
	if s.Starts == 0 {
		return 0
	}
	return float64(s.SearchSteps) / float64(s.Starts)
}

// CheckInvariants verifies that every bucket is sorted by expiry and
// structurally sound.
func (s *Scheme5) CheckInvariants() bool {
	for i := range s.slots {
		if !s.slots[i].CheckInvariants() {
			return false
		}
		prev := core.Tick(-1 << 62)
		ok := true
		s.slots[i].Do(func(n *ilist.Node[*entry]) {
			if n.Value.when < prev {
				ok = false
			}
			prev = n.Value.when
		})
		if !ok {
			return false
		}
	}
	return true
}

var (
	_ core.Facility       = (*Scheme5)(nil)
	_ core.PayloadStarter = (*Scheme5)(nil)
	_ core.IDStopper      = (*Scheme5)(nil)
)
