package hashwheel

import (
	"testing"

	"timingwheels/internal/core"
	"timingwheels/internal/dist"
	"timingwheels/internal/metrics"
)

func noop(core.ID) {}

func TestTableIndexMaskVsMod(t *testing.T) {
	// Power-of-two tables use the AND mask; sizes that are not must fall
	// back to modulo. Both must agree with plain modulo arithmetic.
	for _, size := range []int{1, 2, 8, 256, 3, 33, 100} {
		tb := newTable(size, nil)
		for _, when := range []core.Tick{0, 1, 7, 255, 256, 1 << 40, 12345678} {
			want := int(when % core.Tick(size))
			if got := tb.index(when); got != want {
				t.Fatalf("size %d when %d: index=%d want %d", size, when, got, want)
			}
		}
		if (size&(size-1) == 0) != (tb.mask >= 0) {
			t.Fatalf("size %d: mask fast path misdetected", size)
		}
	}
}

func TestInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size 0 should panic")
		}
	}()
	newTable(0, nil)
}

func TestScheme6RoundsBoundaries(t *testing.T) {
	// rounds = (d-1)/size: exact multiples of the table size must wait
	// the full revolutions (the d mod N == 0 edge case).
	s := NewScheme6(8, nil)
	cases := []struct {
		d      core.Tick
		rounds int64
	}{
		{1, 0}, {7, 0}, {8, 0}, {9, 1}, {16, 1}, {17, 2}, {24, 2}, {25, 3},
	}
	for _, c := range cases {
		if got := s.roundsFor(c.d); got != c.rounds {
			t.Errorf("roundsFor(%d)=%d, want %d", c.d, got, c.rounds)
		}
	}
}

func TestScheme6ArbitraryLargeIntervals(t *testing.T) {
	s := NewScheme6(16, nil)
	var firedAt core.Tick = -1
	if _, err := s.StartTimer(1_000_003, func(core.ID) { firedAt = s.Now() }); err != nil {
		t.Fatal(err)
	}
	// Fast-forward via raw ticks (no Advance fast path by design).
	for firedAt < 0 && s.Now() < 1_100_000 {
		s.Tick()
	}
	if firedAt != 1_000_003 {
		t.Fatalf("fired at %d", firedAt)
	}
}

func TestScheme6StartStopO1RegardlessOfOccupancy(t *testing.T) {
	var cost metrics.Cost
	s := NewScheme6(64, &cost)
	// Adversarial load: everything in one bucket (intervals all multiples
	// of 64).
	for i := 1; i <= 2000; i++ {
		if _, err := s.StartTimer(64*core.Tick(i), noop); err != nil {
			t.Fatal(err)
		}
	}
	before := cost.Snapshot()
	h, err := s.StartTimer(64*3000, noop)
	if err != nil {
		t.Fatal(err)
	}
	if d := cost.Snapshot().Sub(before).Units(); d > 12 {
		t.Fatalf("start into a 2000-deep bucket cost %d units, want O(1)", d)
	}
	before = cost.Snapshot()
	if err := s.StopTimer(h); err != nil {
		t.Fatal(err)
	}
	if d := cost.Snapshot().Sub(before).Units(); d > 12 {
		t.Fatalf("stop cost %d units, want O(1)", d)
	}
}

// TestScheme6PerTickAmortized reproduces the section 6.1.2 claim: "every
// TableSize ticks we decrement once all timers that are still living.
// Thus for n timers we do n/TableSize work on average per tick" —
// regardless of hash distribution.
func TestScheme6PerTickAmortized(t *testing.T) {
	perTick := func(adversarial bool) float64 {
		var cost metrics.Cost
		s := NewScheme6(64, &cost)
		rng := dist.NewRNG(17)
		const n = 640 // n/TableSize = 10
		for i := 0; i < n; i++ {
			var iv core.Tick
			if adversarial {
				iv = 64 * core.Tick(1000+i) // all in one bucket
			} else {
				iv = core.Tick(100_000 + rng.Intn(100_000))
			}
			if _, err := s.StartTimer(iv, noop); err != nil {
				t.Fatal(err)
			}
		}
		cost.Reset()
		const ticks = 640 // ten revolutions
		for i := 0; i < ticks; i++ {
			s.Tick()
		}
		return float64(cost.Units()) / ticks
	}
	spread := perTick(false)
	burst := perTick(true)
	// Both distributions do the same average work per tick (~3 units per
	// touched timer * 10 touched per tick + slot overhead).
	if burst < spread/2 || burst > spread*2 {
		t.Fatalf("per-tick average should not depend on hash spread: spread=%.1f adversarial=%.1f",
			spread, burst)
	}
}

// TestScheme6VarianceDependsOnHash: with the same n, per-tick work
// variance is near zero for an even spread and large when everything
// hashes to one bucket — "the hash distribution ... only controls the
// burstiness (variance)".
func TestScheme6VarianceDependsOnHash(t *testing.T) {
	variance := func(adversarial bool) float64 {
		var cost metrics.Cost
		s := NewScheme6(64, &cost)
		const n = 640
		for i := 0; i < n; i++ {
			var iv core.Tick
			if adversarial {
				iv = 64 * core.Tick(1000+i)
			} else {
				iv = core.Tick(100_000 + i) // perfectly even spread
			}
			if _, err := s.StartTimer(iv, noop); err != nil {
				t.Fatal(err)
			}
		}
		var series metrics.Series
		for i := 0; i < 640; i++ {
			before := cost.Snapshot()
			s.Tick()
			series.Add(float64(cost.Snapshot().Sub(before).Units()))
		}
		return series.Variance()
	}
	even := variance(false)
	burst := variance(true)
	if burst < 10*even+10 {
		t.Fatalf("adversarial variance %.1f should dwarf even-spread %.1f", burst, even)
	}
}

func TestScheme6Occupancy(t *testing.T) {
	s := NewScheme6(8, nil)
	for i := 0; i < 16; i++ {
		if _, err := s.StartTimer(core.Tick(i+1), noop); err != nil {
			t.Fatal(err)
		}
	}
	occ := s.Occupancy()
	total := 0
	for _, c := range occ {
		total += c
	}
	if total != 16 || len(occ) != 8 {
		t.Fatalf("occupancy %v", occ)
	}
}

// --- Scheme 5 ---

func TestScheme5BucketsStaySorted(t *testing.T) {
	s := NewScheme5(16, nil)
	rng := dist.NewRNG(23)
	for i := 0; i < 1000; i++ {
		if _, err := s.StartTimer(core.Tick(1+rng.Intn(500)), noop); err != nil {
			t.Fatal(err)
		}
		if i%7 == 0 {
			s.Tick()
		}
		if !s.CheckInvariants() {
			t.Fatalf("bucket order broken at op %d", i)
		}
	}
}

func TestScheme5AverageSearchO1WhenSpread(t *testing.T) {
	// Section 6.1.1: average O(1) START_TIMER if n < TableSize and the
	// hash distributes evenly.
	s := NewScheme5(1024, nil)
	rng := dist.NewRNG(29)
	// Steady state ~256 outstanding << 1024 buckets.
	for i := 0; i < 20000; i++ {
		if _, err := s.StartTimer(core.Tick(1+rng.Intn(512)), noop); err != nil {
			t.Fatal(err)
		}
		s.Tick()
		s.Tick()
	}
	if avg := s.AverageSearch(); avg > 2.0 {
		t.Fatalf("average search %.2f elements, want O(1)", avg)
	}
}

func TestScheme5DegradesWhenHashConcentrates(t *testing.T) {
	// The paper's verdict: Scheme 5 "depends too much on the hash
	// distribution". All-same-bucket inserts cost O(bucket length).
	s := NewScheme5(64, nil)
	for i := 1; i <= 500; i++ {
		if _, err := s.StartTimer(64*core.Tick(i), noop); err != nil {
			t.Fatal(err)
		}
	}
	if avg := s.AverageSearch(); avg < 50 {
		t.Fatalf("adversarial average search %.2f, expected O(n) degradation", avg)
	}
}

func TestScheme5MultiRevolutionOrder(t *testing.T) {
	// Two timers in the same bucket, different revolutions, must fire in
	// expiry order even though the later one was started first.
	s := NewScheme5(8, nil)
	var fires []core.Tick
	record := func(core.ID) { fires = append(fires, s.Now()) }
	if _, err := s.StartTimer(19, record); err != nil { // bucket 3, rev 2
		t.Fatal(err)
	}
	if _, err := s.StartTimer(3, record); err != nil { // bucket 3, rev 0
		t.Fatal(err)
	}
	if _, err := s.StartTimer(11, record); err != nil { // bucket 3, rev 1
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		s.Tick()
	}
	if len(fires) != 3 || fires[0] != 3 || fires[1] != 11 || fires[2] != 19 {
		t.Fatalf("fires=%v, want [3 11 19]", fires)
	}
}

// --- ablation variant ---

func TestScheme6AbsoluteMatchesScheme6(t *testing.T) {
	a := NewScheme6(16, nil)
	b := NewScheme6Absolute(16, nil)
	rng := dist.NewRNG(31)
	var aFires, bFires []core.Tick
	for i := 0; i < 400; i++ {
		iv := core.Tick(1 + rng.Intn(100))
		if _, err := a.StartTimer(iv, func(core.ID) { aFires = append(aFires, a.Now()) }); err != nil {
			t.Fatal(err)
		}
		if _, err := b.StartTimer(iv, func(core.ID) { bFires = append(bFires, b.Now()) }); err != nil {
			t.Fatal(err)
		}
		a.Tick()
		b.Tick()
	}
	for i := 0; i < 200; i++ {
		a.Tick()
		b.Tick()
	}
	if len(aFires) != len(bFires) {
		t.Fatalf("fire counts differ: %d vs %d", len(aFires), len(bFires))
	}
	for i := range aFires {
		if aFires[i] != bFires[i] {
			t.Fatalf("fire %d differs: %d vs %d", i, aFires[i], bFires[i])
		}
	}
	if a.Name() == b.Name() {
		t.Fatal("variants should have distinct names")
	}
}

func TestScheme6AbsoluteDoesFewerWritesPerTick(t *testing.T) {
	// The DECREMENT option writes every surviving timer each pass; the
	// COMPARE option does not (section 3.1's trade-off).
	load := func(f core.Facility) {
		for i := 0; i < 320; i++ {
			if _, err := f.StartTimer(100_000, noop); err != nil {
				panic(err)
			}
		}
	}
	var c6, cAbs metrics.Cost
	s6 := NewScheme6(32, &c6)
	sAbs := NewScheme6Absolute(32, &cAbs)
	load(s6)
	load(sAbs)
	c6.Reset()
	cAbs.Reset()
	for i := 0; i < 320; i++ {
		s6.Tick()
		sAbs.Tick()
	}
	if cAbs.Writes >= c6.Writes {
		t.Fatalf("absolute variant writes %d >= decrement variant %d", cAbs.Writes, c6.Writes)
	}
}

// TestScheme6AdvanceEquivalence: the bitmap-skipping Advance fires the
// same timers at the same times as tick-by-tick stepping, including
// multi-revolution rounds decrements.
func TestScheme6AdvanceEquivalence(t *testing.T) {
	rng := dist.NewRNG(97)
	a := NewScheme6(32, nil)
	b := NewScheme6(32, nil)
	var aFires, bFires []core.Tick
	for round := 0; round < 60; round++ {
		k := rng.Intn(4)
		for i := 0; i < k; i++ {
			iv := core.Tick(1 + rng.Intn(400)) // spans many revolutions
			if _, err := a.StartTimer(iv, func(core.ID) { aFires = append(aFires, a.Now()) }); err != nil {
				t.Fatal(err)
			}
			if _, err := b.StartTimer(iv, func(core.ID) { bFires = append(bFires, b.Now()) }); err != nil {
				t.Fatal(err)
			}
		}
		step := core.Tick(1 + rng.Intn(150))
		na := a.Advance(step)
		nb := 0
		for i := core.Tick(0); i < step; i++ {
			nb += b.Tick()
		}
		if na != nb || a.Now() != b.Now() || a.Len() != b.Len() {
			t.Fatalf("round %d: advance fired %d (now %d len %d) vs ticks %d (now %d len %d)",
				round, na, a.Now(), a.Len(), nb, b.Now(), b.Len())
		}
	}
	for i := range aFires {
		if aFires[i] != bFires[i] {
			t.Fatalf("fire %d at %d vs %d", i, aFires[i], bFires[i])
		}
	}
	if len(aFires) == 0 {
		t.Fatal("nothing fired")
	}
}

// TestScheme6AdvanceIdleIsCheap: skipping a fully idle table costs O(1)
// per jump instead of O(span).
func TestScheme6AdvanceIdleIsCheap(t *testing.T) {
	var cost metrics.Cost
	s := NewScheme6(4096, &cost)
	fired := false
	if _, err := s.StartTimer(1_000_000, func(core.ID) { fired = true }); err != nil {
		t.Fatal(err)
	}
	cost.Reset()
	s.Advance(1_000_000)
	if !fired {
		t.Fatal("timer did not fire")
	}
	// One occupied slot visited per revolution (~244 visits), each a few
	// units — far below the 1M units of tick-by-tick stepping.
	if u := cost.Snapshot().Units(); u > 5000 {
		t.Fatalf("Advance cost %d units; expected ~244 slot visits", u)
	}
}
