// Package chaos provides a fault-injection clock for hardening tests.
//
// Production timer facilities must survive clock anomalies — suspend/
// resume leaps, NTP steps backwards, stalled time sources, and jittery
// tick delivery. The paper's model assumes a well-behaved hardware clock
// that "invokes PER_TICK_BOOKKEEPING every T units"; Clock deliberately
// breaks that assumption on command so the runtime's recovery paths can
// be exercised deterministically, without real sleeps.
//
// A Clock wraps a base time source (the real clock, or a manually
// advanced one) and applies an adjustable offset plus optional stalls
// and deterministic jitter. All methods are safe for concurrent use, so
// a test can inject an anomaly while a runtime driver goroutine is
// reading the clock.
package chaos

import (
	"sync"
	"time"
)

// Clock is a time source with injectable faults. Obtain one with New or
// NewManual and hand its Now method to the component under test.
type Clock struct {
	mu      sync.Mutex
	base    func() time.Time // nil means the clock is manual
	manual  time.Time        // current time when base == nil
	offset  time.Duration    // accumulated Jump/Regress adjustment
	stalled bool
	stallAt time.Time
	jitter  time.Duration // half-width of the jitter window; 0 disables
	rng     uint64        // xorshift state for deterministic jitter
	obs     uint64
}

// New returns a Clock over the given base source (time.Now when base is
// nil). Anomalies injected later adjust what Now reports relative to the
// base.
func New(base func() time.Time) *Clock {
	if base == nil {
		base = time.Now
	}
	return &Clock{base: base}
}

// NewManual returns a fully virtual Clock that starts at start and moves
// only when Advance (or an anomaly method) is called — the deterministic
// substrate for driver tests with no real sleeps.
func NewManual(start time.Time) *Clock {
	return &Clock{manual: start}
}

// Now reports the current (possibly faulty) time: base time plus the
// anomaly offset, frozen while stalled, and perturbed by jitter when
// enabled.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.obs++
	if c.stalled {
		return c.stallAt
	}
	t := c.baseNow().Add(c.offset)
	if c.jitter > 0 {
		t = t.Add(c.nextJitter())
	}
	return t
}

// Observations reports how many times Now has been called — useful for
// asserting that a driver actually consulted the clock.
func (c *Clock) Observations() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.obs
}

// Advance moves a manual clock forward by d (d >= 0). It panics on a
// clock built with New: real-based clocks advance on their own.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic("chaos: cannot advance backwards; use Regress")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.base != nil {
		panic("chaos: Advance requires a manual clock")
	}
	c.manual = c.manual.Add(d)
}

// Jump injects a forward leap of d (d >= 0) — the suspend/resume or
// forward-NTP-step anomaly. Subsequent Now calls include the leap.
func (c *Clock) Jump(d time.Duration) {
	if d < 0 {
		panic("chaos: Jump must be non-negative; use Regress")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.offset += d
}

// Regress injects a backward step of d (d >= 0) — the backward-NTP-step
// anomaly. Subsequent Now calls read earlier than before.
func (c *Clock) Regress(d time.Duration) {
	if d < 0 {
		panic("chaos: Regress must be non-negative; use Jump")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.offset -= d
}

// Stall freezes the clock at its current reading: Now repeats the same
// instant until Resume. With a real base, time keeps passing underneath,
// so Resume manifests as a forward leap — exactly what a suspended
// process observes.
func (c *Clock) Stall() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stalled {
		return
	}
	c.stallAt = c.baseNow().Add(c.offset)
	c.stalled = true
}

// Resume unfreezes a stalled clock.
func (c *Clock) Resume() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stalled = false
}

// SetJitter makes every Now reading wobble by a deterministic amount in
// (-max, +max), seeded by seed — the "jittery tick delivery" anomaly.
// max = 0 disables jitter. Jittered readings are not monotonic; that is
// the point.
func (c *Clock) SetJitter(max time.Duration, seed uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.jitter = max
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	c.rng = seed
}

// baseNow reads the underlying source; callers hold c.mu.
func (c *Clock) baseNow() time.Time {
	if c.base != nil {
		return c.base()
	}
	return c.manual
}

// nextJitter draws the next deterministic perturbation; callers hold
// c.mu and have checked c.jitter > 0.
func (c *Clock) nextJitter() time.Duration {
	c.rng ^= c.rng << 13
	c.rng ^= c.rng >> 7
	c.rng ^= c.rng << 17
	span := uint64(2*c.jitter) + 1
	return time.Duration(c.rng%span) - c.jitter
}
