package chaos

import (
	"testing"
	"time"
)

var epoch = time.Date(2026, 8, 6, 0, 0, 0, 0, time.UTC)

func TestManualAdvance(t *testing.T) {
	c := NewManual(epoch)
	if !c.Now().Equal(epoch) {
		t.Fatal("manual clock should start at epoch")
	}
	c.Advance(10 * time.Millisecond)
	if got := c.Now().Sub(epoch); got != 10*time.Millisecond {
		t.Fatalf("after Advance: %v", got)
	}
	if c.Observations() != 2 {
		t.Fatalf("Observations=%d", c.Observations())
	}
}

func TestJumpAndRegress(t *testing.T) {
	c := NewManual(epoch)
	c.Jump(time.Minute)
	if got := c.Now().Sub(epoch); got != time.Minute {
		t.Fatalf("after Jump: %v", got)
	}
	c.Regress(90 * time.Second)
	if got := c.Now().Sub(epoch); got != -30*time.Second {
		t.Fatalf("after Regress: %v", got)
	}
	// Anomalies compose with normal advancement.
	c.Advance(time.Hour)
	if got := c.Now().Sub(epoch); got != time.Hour-30*time.Second {
		t.Fatalf("after Advance: %v", got)
	}
}

func TestStallFreezesAndResumeLeaps(t *testing.T) {
	c := NewManual(epoch)
	c.Advance(time.Second)
	c.Stall()
	frozen := c.Now()
	c.Advance(time.Minute) // base keeps moving underneath
	if !c.Now().Equal(frozen) {
		t.Fatal("stalled clock moved")
	}
	c.Stall() // idempotent
	if !c.Now().Equal(frozen) {
		t.Fatal("second Stall changed the frozen reading")
	}
	c.Resume()
	if got := c.Now().Sub(frozen); got != time.Minute {
		t.Fatalf("resume should surface the elapsed base time, got %v", got)
	}
}

func TestRealBaseClock(t *testing.T) {
	c := New(nil) // time.Now underneath
	before := time.Now()
	got := c.Now()
	if got.Before(before.Add(-time.Second)) || got.After(before.Add(time.Second)) {
		t.Fatalf("real-base clock far from wall time: %v vs %v", got, before)
	}
	c.Jump(time.Hour)
	if c.Now().Sub(time.Now()) < 59*time.Minute {
		t.Fatal("Jump not visible over real base")
	}
}

func TestAdvanceOnRealBasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance on a real-base clock should panic")
		}
	}()
	New(nil).Advance(time.Second)
}

func TestJitterBoundedAndDeterministic(t *testing.T) {
	const max = 5 * time.Millisecond
	read := func(seed uint64) []time.Duration {
		c := NewManual(epoch)
		c.SetJitter(max, seed)
		out := make([]time.Duration, 32)
		for i := range out {
			out[i] = c.Now().Sub(epoch)
		}
		return out
	}
	a, b := read(42), read(42)
	varied := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] < -max || a[i] > max {
			t.Fatalf("jitter %v outside (-%v, %v)", a[i], max, max)
		}
		if a[i] != 0 {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jitter never perturbed the clock")
	}
	c := NewManual(epoch)
	c.SetJitter(0, 1) // disabled
	if !c.Now().Equal(epoch) {
		t.Fatal("zero jitter should leave readings exact")
	}
}
