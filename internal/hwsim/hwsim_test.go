package hwsim

import (
	"math"
	"strings"
	"testing"

	"timingwheels/internal/dist"
)

func TestChip6FiresExactly(t *testing.T) {
	c := NewChip6(16)
	id := c.Start(100)
	var firedAt int64 = -1
	for tick := int64(1); tick <= 120; tick++ {
		for _, f := range c.Tick() {
			if f == id {
				firedAt = tick
			}
		}
	}
	if firedAt != 100 {
		t.Fatalf("fired at %d, want 100", firedAt)
	}
	if c.Len() != 0 {
		t.Fatalf("Len=%d", c.Len())
	}
}

func TestChip6NoInterruptsWhenIdle(t *testing.T) {
	c := NewChip6(32)
	for i := 0; i < 1000; i++ {
		c.Tick()
	}
	rep := c.Report()
	if rep.Interrupts != 0 {
		t.Fatalf("idle chip interrupted host %d times", rep.Interrupts)
	}
	if rep.Ticks != 1000 {
		t.Fatalf("Ticks=%d", rep.Ticks)
	}
}

// TestChip6TouchesPerTimerIsTOverM reproduces Appendix A: with mean
// lifetime T and table size M, the host examines each timer about T/M
// times (one per cursor pass, plus the final expiry pass).
func TestChip6TouchesPerTimerIsTOverM(t *testing.T) {
	const M = 64
	const T = 1024 // constant lifetime for a sharp prediction
	c := NewChip6(M)
	rng := dist.NewRNG(71)
	for tick := int64(0); tick < 40000; tick++ {
		if rng.Intn(4) == 0 {
			c.Start(T)
		}
		c.Tick()
	}
	rep := c.Report()
	want := float64(T) / float64(M) // 16 passes; the last one fires it
	if math.Abs(rep.TouchesPerTimer-want) > 1 {
		t.Fatalf("touches/timer=%.2f, want ~%.1f (T/M)", rep.TouchesPerTimer, want)
	}
}

func TestChip6BusyBitsClear(t *testing.T) {
	c := NewChip6(8)
	c.Start(3)
	for i := 0; i < 8; i++ {
		c.Tick()
	}
	rep := c.Report()
	// One interrupt to fire the timer; afterwards the slot is idle again,
	// so the remaining passes are silent.
	if rep.Interrupts != 1 {
		t.Fatalf("Interrupts=%d, want 1", rep.Interrupts)
	}
}

func TestChip7FiresExactly(t *testing.T) {
	c := NewChip7([]int{8, 8, 8})
	if c.MaxInterval() != 511 {
		t.Fatalf("MaxInterval=%d", c.MaxInterval())
	}
	for _, interval := range []int64{1, 7, 8, 9, 63, 64, 100, 511} {
		c := NewChip7([]int{8, 8, 8})
		id := c.Start(interval)
		var firedAt int64 = -1
		for tick := int64(1); tick <= interval+4; tick++ {
			for _, f := range c.Tick() {
				if f == id {
					firedAt = tick
				}
			}
		}
		if firedAt != interval {
			t.Fatalf("interval %d fired at %d", interval, firedAt)
		}
	}
}

// TestChip7TouchesBoundedByLevels reproduces the Appendix A contrast:
// the Scheme 7 chip interrupts the host at most m times per timer, even
// for lifetimes where the Scheme 6 chip would interrupt T/M times.
func TestChip7TouchesBoundedByLevels(t *testing.T) {
	radices := []int{16, 16, 16}
	c := NewChip7(radices)
	rng := dist.NewRNG(73)
	for tick := int64(0); tick < 60000; tick++ {
		if rng.Intn(8) == 0 {
			c.Start(int64(1 + rng.Intn(4000)))
		}
		c.Tick()
	}
	rep := c.Report()
	if rep.Fired == 0 {
		t.Fatal("nothing fired")
	}
	if rep.TouchesPerTimer > float64(len(radices)) {
		t.Fatalf("touches/timer=%.2f exceeds m=%d", rep.TouchesPerTimer, len(radices))
	}
}

// TestChipComparison is E8 in miniature: long-lived timers on a small
// table interrupt the Scheme 6 chip far more often than the hierarchy.
func TestChipComparison(t *testing.T) {
	const T = 4000
	run6 := func() Report {
		c := NewChip6(16)
		rng := dist.NewRNG(79)
		for tick := int64(0); tick < 30000; tick++ {
			if rng.Intn(16) == 0 {
				c.Start(T)
			}
			c.Tick()
		}
		return c.Report()
	}
	run7 := func() Report {
		c := NewChip7([]int{16, 16, 16})
		rng := dist.NewRNG(79)
		for tick := int64(0); tick < 30000; tick++ {
			if rng.Intn(16) == 0 {
				c.Start(T)
			}
			c.Tick()
		}
		return c.Report()
	}
	r6, r7 := run6(), run7()
	// Scheme 6: ~T/M = 250 touches per timer. Scheme 7: <= 3.
	if r6.TouchesPerTimer < 50*r7.TouchesPerTimer {
		t.Fatalf("scheme6 chip %.1f touches/timer vs scheme7 %.1f: contrast too small",
			r6.TouchesPerTimer, r7.TouchesPerTimer)
	}
}

func TestFullChipInterruptsOnlyOnExpiry(t *testing.T) {
	c := NewFullChip(16)
	rng := dist.NewRNG(83)
	started := 0
	for tick := int64(0); tick < 20000; tick++ {
		if rng.Intn(4) == 0 {
			c.Start(int64(1 + rng.Intn(900)))
			started++
		}
		c.Tick()
	}
	// Drain.
	for c.Len() > 0 {
		c.Tick()
	}
	rep := c.Report()
	if rep.Fired != uint64(started) {
		t.Fatalf("fired %d of %d", rep.Fired, started)
	}
	// Exactly one host touch per timer, and interrupts <= expiries.
	if rep.TouchesPerTimer != 1 {
		t.Fatalf("touches/timer=%v, want exactly 1", rep.TouchesPerTimer)
	}
	if rep.Interrupts > rep.Fired {
		t.Fatalf("interrupts %d exceed expiries %d", rep.Interrupts, rep.Fired)
	}
	if rep.Interrupts == 0 {
		t.Fatal("no interrupts despite expiries")
	}
}

func TestFullChipFiresExactly(t *testing.T) {
	c := NewFullChip(8)
	id := c.Start(37)
	var firedAt int64 = -1
	for tick := int64(1); tick <= 40; tick++ {
		for _, f := range c.Tick() {
			if f == id {
				firedAt = tick
			}
		}
	}
	if firedAt != 37 {
		t.Fatalf("fired at %d, want 37", firedAt)
	}
}

func TestReportString(t *testing.T) {
	c := NewChip6(8)
	c.Start(3)
	for i := 0; i < 4; i++ {
		c.Tick()
	}
	if s := c.Report().String(); !strings.Contains(s, "interrupts=") {
		t.Fatalf("Report.String()=%q", s)
	}
}

func TestChipPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"chip6 size 0":       func() { NewChip6(0) },
		"chip6 interval 0":   func() { NewChip6(8).Start(0) },
		"chip7 no levels":    func() { NewChip7(nil) },
		"chip7 radix 1":      func() { NewChip7([]int{1}) },
		"chip7 out of range": func() { NewChip7([]int{4, 4}).Start(100) },
		"chip7 interval 0":   func() { NewChip7([]int{4, 4}).Start(0) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}
