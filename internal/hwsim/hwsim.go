// Package hwsim simulates the hardware assist of Appendix A of the
// paper: a timer chip — "actually just a counter" — that steps through
// the timer arrays on every clock tick and interrupts the host only when
// the array location it passes is marked busy. The host keeps the actual
// timer queues in its memory; the chip keeps only the busy bits. The only
// communication is the interrupt (plus the host marking locations busy or
// idle as queues become non-empty or empty).
//
// The quantity of record (Appendix A.1): with a Scheme 6 table of M
// slots, the host is interrupted an average of T/M times per timer of
// lifetime T (one touch per cursor pass over its slot); with a Scheme 7
// hierarchy of m levels, at most m times per timer (one per migration
// plus the final expiry). Experiment E8 measures both.
package hwsim

import (
	"fmt"

	"timingwheels/internal/ilist"
)

// record is one host-memory timer record.
type record struct {
	id     uint64
	when   int64 // absolute expiry tick
	rounds int64 // Scheme 6 chip: revolutions remaining
	// touches counts how many times the host had to examine this record
	// in interrupt context.
	touches int
	node    ilist.Node[*record]
}

// Report summarizes a chip run.
type Report struct {
	// Ticks is the number of chip scan steps performed.
	Ticks int64
	// Interrupts is the number of ticks on which the chip interrupted
	// the host (a busy location passed under the scan counter).
	Interrupts uint64
	// Touches is the total number of timer-record examinations the host
	// performed in interrupt context.
	Touches uint64
	// Fired is the number of timers that expired.
	Fired uint64
	// TouchesPerTimer is the mean number of interrupt-context
	// examinations over the lifetime of each fired timer — the paper's
	// T/M (Scheme 6) vs <= m (Scheme 7) comparison.
	TouchesPerTimer float64
	// InterruptsPerTick is the fraction of scan steps that interrupted
	// the host.
	InterruptsPerTick float64
}

func (r *Report) finish() {
	if r.Fired > 0 {
		r.TouchesPerTimer = float64(r.Touches) / float64(r.Fired)
	}
	if r.Ticks > 0 {
		r.InterruptsPerTick = float64(r.Interrupts) / float64(r.Ticks)
	}
}

// String formats the headline numbers.
func (r Report) String() string {
	return fmt.Sprintf("ticks=%d interrupts=%d touches/timer=%.2f interrupts/tick=%.3f",
		r.Ticks, r.Interrupts, r.TouchesPerTimer, r.InterruptsPerTick)
}

// Chip6 models a Scheme 6 scan chip: M busy bits in chip memory, M
// unsorted timer queues in host memory.
type Chip6 struct {
	busy   []bool // chip memory
	queues []ilist.List[*record]
	cursor int
	now    int64
	nextID uint64
	n      int
	rep    Report
	batch  []*record
}

// NewChip6 returns a scan chip over a table of the given size.
func NewChip6(size int) *Chip6 {
	if size < 1 {
		panic("hwsim: table size must be >= 1")
	}
	c := &Chip6{busy: make([]bool, size), queues: make([]ilist.List[*record], size)}
	for i := range c.queues {
		c.queues[i].Init(nil)
	}
	return c
}

// Len reports outstanding timers.
func (c *Chip6) Len() int { return c.n }

// Start inserts a timer due in interval ticks. The host computes the
// slot and revolution count and, if the queue was empty, tells the chip
// the location is now busy.
func (c *Chip6) Start(interval int64) uint64 {
	if interval < 1 {
		panic("hwsim: interval must be >= 1")
	}
	size := int64(len(c.busy))
	r := &record{id: c.nextID, when: c.now + interval, rounds: (interval - 1) / size}
	c.nextID++
	r.node.Value = r
	slot := int(r.when % size)
	if c.queues[slot].Empty() {
		c.busy[slot] = true // host -> chip: mark busy
	}
	c.queues[slot].PushFront(&r.node)
	c.n++
	return r.id
}

// Tick performs one chip scan step, interrupting the host if the passed
// location is busy. It returns the ids of timers that fired.
func (c *Chip6) Tick() []uint64 {
	c.now++
	c.rep.Ticks++
	c.cursor++
	if c.cursor == len(c.busy) {
		c.cursor = 0
	}
	if !c.busy[c.cursor] {
		return nil // chip scans on; host never knows
	}
	// Interrupt: the chip hands the host the address of the queue.
	c.rep.Interrupts++
	q := &c.queues[c.cursor]
	c.batch = c.batch[:0]
	for n := q.Front(); n != nil; {
		next := n.Next()
		r := n.Value
		r.touches++
		c.rep.Touches++
		if r.rounds == 0 {
			q.Remove(n)
			c.batch = append(c.batch, r)
		} else {
			r.rounds--
		}
		n = next
	}
	if q.Empty() {
		c.busy[c.cursor] = false // host -> chip: location idle again
	}
	var fired []uint64
	for _, r := range c.batch {
		c.rep.Fired++
		c.n--
		fired = append(fired, r.id)
	}
	return fired
}

// Report returns the accumulated counters.
func (c *Chip6) Report() Report {
	rep := c.rep
	rep.finish()
	return rep
}

// FullChip models the other Appendix A design point: "a timer chip which
// maintains all the data structures (say in Scheme 6) and interrupts
// host software only when a timer expires". The host does zero per-tick
// work — every interrupt delivers an expiry — at the price of the chip
// owning the timer memory (so array sizes become chip-initialization
// parameters, as the appendix notes).
type FullChip struct {
	inner *Chip6
	rep   Report
}

// NewFullChip returns a full-offload chip over a Scheme 6 table of the
// given size.
func NewFullChip(size int) *FullChip {
	return &FullChip{inner: NewChip6(size)}
}

// Len reports outstanding timers (held in chip memory).
func (c *FullChip) Len() int { return c.inner.Len() }

// Start hands the timer to the chip; no host-side data structures.
func (c *FullChip) Start(interval int64) uint64 { return c.inner.Start(interval) }

// Tick steps the chip. The host is interrupted only when timers expire;
// all scanning and revolution bookkeeping happens inside the chip.
func (c *FullChip) Tick() []uint64 {
	c.rep.Ticks++
	fired := c.inner.Tick()
	if len(fired) > 0 {
		// One interrupt delivers the batch; the host touches each
		// expired record exactly once.
		c.rep.Interrupts++
		c.rep.Touches += uint64(len(fired))
		c.rep.Fired += uint64(len(fired))
	}
	return fired
}

// Report returns the host-visible counters (chip-internal scans are, by
// design, invisible to the host).
func (c *FullChip) Report() Report {
	rep := c.rep
	rep.finish()
	return rep
}

// Chip7 models a Scheme 7 scan chip over a hierarchy of wheels: one busy
// bit per slot per level. Migrations and expiries each cost the host one
// interrupt-context examination, so touches per timer <= levels.
type Chip7 struct {
	levels []chipLevel
	now    int64
	nextID uint64
	n      int
	rep    Report
	batch  []*record
}

type chipLevel struct {
	busy   []bool
	queues []ilist.List[*record]
	gran   int64
	span   int64
}

// NewChip7 returns a scan chip over a hierarchy with the given per-level
// slot counts (finest first).
func NewChip7(radices []int) *Chip7 {
	if len(radices) == 0 {
		panic("hwsim: at least one level required")
	}
	c := &Chip7{levels: make([]chipLevel, len(radices))}
	gran := int64(1)
	for i, r := range radices {
		if r < 2 {
			panic("hwsim: radix must be >= 2")
		}
		lv := &c.levels[i]
		lv.gran = gran
		lv.busy = make([]bool, r)
		lv.queues = make([]ilist.List[*record], r)
		for j := range lv.queues {
			lv.queues[j].Init(nil)
		}
		gran *= int64(r)
		lv.span = gran
	}
	return c
}

// MaxInterval reports the largest startable interval.
func (c *Chip7) MaxInterval() int64 { return c.levels[len(c.levels)-1].span - 1 }

// Len reports outstanding timers.
func (c *Chip7) Len() int { return c.n }

// Start inserts a timer due in interval ticks at the appropriate level.
func (c *Chip7) Start(interval int64) uint64 {
	if interval < 1 || interval > c.MaxInterval() {
		panic("hwsim: interval out of range")
	}
	r := &record{id: c.nextID, when: c.now + interval}
	c.nextID++
	r.node.Value = r
	c.place(r)
	c.n++
	return r.id
}

func (c *Chip7) place(r *record) {
	diff := r.when - c.now
	for k := range c.levels {
		lv := &c.levels[k]
		if diff < lv.span {
			slot := int((r.when / lv.gran) % int64(len(lv.busy)))
			if lv.queues[slot].Empty() {
				lv.busy[slot] = true
			}
			lv.queues[slot].PushFront(&r.node)
			return
		}
	}
	panic("hwsim: unreachable: interval validated in Start")
}

// Tick performs one scan step across the hierarchy: cascading levels
// whose slot boundary was crossed interrupt the host to migrate their
// timers; the finest level's slot interrupts to fire. It returns fired
// timer ids.
func (c *Chip7) Tick() []uint64 {
	c.now++
	c.rep.Ticks++
	c.batch = c.batch[:0]

	for k := 1; k < len(c.levels); k++ {
		lv := &c.levels[k]
		if c.now%lv.gran != 0 {
			break
		}
		slot := int((c.now / lv.gran) % int64(len(lv.busy)))
		if !lv.busy[slot] {
			continue
		}
		c.rep.Interrupts++
		for n := lv.queues[slot].PopFront(); n != nil; n = lv.queues[slot].PopFront() {
			r := n.Value
			r.touches++
			c.rep.Touches++
			if r.when <= c.now {
				c.batch = append(c.batch, r)
				continue
			}
			c.place(r)
		}
		lv.busy[slot] = false
	}

	lv0 := &c.levels[0]
	slot := int(c.now % int64(len(lv0.busy)))
	if lv0.busy[slot] {
		c.rep.Interrupts++
		for n := lv0.queues[slot].PopFront(); n != nil; n = lv0.queues[slot].PopFront() {
			r := n.Value
			r.touches++
			c.rep.Touches++
			c.batch = append(c.batch, r)
		}
		lv0.busy[slot] = false
	}

	var fired []uint64
	for _, r := range c.batch {
		c.rep.Fired++
		c.n--
		fired = append(fired, r.id)
	}
	return fired
}

// Report returns the accumulated counters.
func (c *Chip7) Report() Report {
	rep := c.rep
	rep.finish()
	return rep
}
