package ilist

import (
	"testing"
	"testing/quick"

	"timingwheels/internal/dist"
	"timingwheels/internal/metrics"
)

func collect(l *List[int]) []int {
	var out []int
	l.Do(func(n *Node[int]) { out = append(out, n.Value) })
	return out
}

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyList(t *testing.T) {
	l := New[int](nil)
	if l.Len() != 0 || !l.Empty() {
		t.Fatal("new list should be empty")
	}
	if l.Front() != nil || l.Back() != nil {
		t.Fatal("Front/Back of empty list should be nil")
	}
	if l.PopFront() != nil {
		t.Fatal("PopFront of empty list should be nil")
	}
	if !l.CheckInvariants() {
		t.Fatal("empty list invariants")
	}
}

func TestZeroValueLazyInit(t *testing.T) {
	var l List[int]
	n := &Node[int]{Value: 7}
	l.PushBack(n)
	if l.Len() != 1 || l.Front() != n {
		t.Fatal("zero-value list should lazily initialize")
	}
}

func TestPushFrontBackOrder(t *testing.T) {
	l := New[int](nil)
	n1, n2, n3 := &Node[int]{Value: 1}, &Node[int]{Value: 2}, &Node[int]{Value: 3}
	l.PushBack(n2)
	l.PushFront(n1)
	l.PushBack(n3)
	if got := collect(l); !equal(got, []int{1, 2, 3}) {
		t.Fatalf("got %v, want [1 2 3]", got)
	}
	if l.Front() != n1 || l.Back() != n3 {
		t.Fatal("Front/Back wrong")
	}
}

func TestInsertBeforeAfter(t *testing.T) {
	l := New[int](nil)
	a, b := &Node[int]{Value: 1}, &Node[int]{Value: 4}
	l.PushBack(a)
	l.PushBack(b)
	l.InsertAfter(&Node[int]{Value: 2}, a)
	l.InsertBefore(&Node[int]{Value: 3}, b)
	if got := collect(l); !equal(got, []int{1, 2, 3, 4}) {
		t.Fatalf("got %v", got)
	}
	if !l.CheckInvariants() {
		t.Fatal("invariants")
	}
}

func TestRemoveMiddleAndEnds(t *testing.T) {
	l := New[int](nil)
	nodes := make([]*Node[int], 5)
	for i := range nodes {
		nodes[i] = &Node[int]{Value: i}
		l.PushBack(nodes[i])
	}
	l.Remove(nodes[2])
	l.Remove(nodes[0])
	l.Remove(nodes[4])
	if got := collect(l); !equal(got, []int{1, 3}) {
		t.Fatalf("got %v, want [1 3]", got)
	}
	if nodes[2].Attached() {
		t.Fatal("removed node still attached")
	}
	if nodes[2].Next() != nil || nodes[2].Prev() != nil {
		t.Fatal("removed node retains links")
	}
}

func TestDetach(t *testing.T) {
	l := New[int](nil)
	n := &Node[int]{Value: 1}
	l.PushBack(n)
	if !n.Detach() {
		t.Fatal("Detach should report true for an attached node")
	}
	if n.Detach() {
		t.Fatal("Detach should report false for a detached node")
	}
	if l.Len() != 0 {
		t.Fatal("list should be empty")
	}
}

func TestNextPrevWalk(t *testing.T) {
	l := New[int](nil)
	for i := 0; i < 4; i++ {
		l.PushBack(&Node[int]{Value: i})
	}
	var fwd []int
	for n := l.Front(); n != nil; n = n.Next() {
		fwd = append(fwd, n.Value)
	}
	var rev []int
	for n := l.Back(); n != nil; n = n.Prev() {
		rev = append(rev, n.Value)
	}
	if !equal(fwd, []int{0, 1, 2, 3}) || !equal(rev, []int{3, 2, 1, 0}) {
		t.Fatalf("fwd=%v rev=%v", fwd, rev)
	}
}

func TestTakeAll(t *testing.T) {
	l := New[int](nil)
	for i := 0; i < 3; i++ {
		l.PushBack(&Node[int]{Value: i})
	}
	nodes := l.TakeAll()
	if len(nodes) != 3 || l.Len() != 0 {
		t.Fatalf("TakeAll returned %d nodes, list len %d", len(nodes), l.Len())
	}
	for i, n := range nodes {
		if n.Value != i || n.Attached() {
			t.Fatalf("node %d: value %d attached %v", i, n.Value, n.Attached())
		}
	}
	if l.TakeAll() != nil {
		t.Fatal("TakeAll on empty list should be nil")
	}
}

func TestDoubleAttachPanics(t *testing.T) {
	l := New[int](nil)
	n := &Node[int]{Value: 1}
	l.PushBack(n)
	defer func() {
		if recover() == nil {
			t.Fatal("attaching an attached node should panic")
		}
	}()
	l.PushBack(n)
}

func TestRemoveForeignPanics(t *testing.T) {
	l1, l2 := New[int](nil), New[int](nil)
	n := &Node[int]{Value: 1}
	l1.PushBack(n)
	defer func() {
		if recover() == nil {
			t.Fatal("removing from the wrong list should panic")
		}
	}()
	l2.Remove(n)
}

func TestCostAccounting(t *testing.T) {
	var cost metrics.Cost
	l := New[int](&cost)
	n := &Node[int]{Value: 1}
	l.PushBack(n)
	afterInsert := cost.Snapshot()
	if afterInsert.Writes == 0 || afterInsert.Reads == 0 {
		t.Fatalf("insert should record reads and writes: %+v", afterInsert)
	}
	l.Remove(n)
	d := cost.Snapshot().Sub(afterInsert)
	if d.Writes == 0 || d.Reads == 0 {
		t.Fatalf("remove should record reads and writes: %+v", d)
	}
}

// TestQuickRandomOps drives the list against a reference slice through
// random push/insert/remove sequences.
func TestQuickRandomOps(t *testing.T) {
	check := func(seed uint64) bool {
		rng := dist.NewRNG(seed)
		l := New[int](nil)
		var ref []int
		var nodes []*Node[int]
		for op := 0; op < 300; op++ {
			switch rng.Intn(5) {
			case 0: // push front
				n := &Node[int]{Value: op}
				l.PushFront(n)
				nodes = append(nodes, n)
				ref = append([]int{op}, ref...)
			case 1: // push back
				n := &Node[int]{Value: op}
				l.PushBack(n)
				nodes = append(nodes, n)
				ref = append(ref, op)
			case 2: // insert after a random node
				if len(nodes) == 0 {
					continue
				}
				mark := nodes[rng.Intn(len(nodes))]
				n := &Node[int]{Value: op}
				l.InsertAfter(n, mark)
				nodes = append(nodes, n)
				for i, v := range ref {
					if v == mark.Value {
						ref = append(ref[:i+1], append([]int{op}, ref[i+1:]...)...)
						break
					}
				}
			case 3: // insert before a random node
				if len(nodes) == 0 {
					continue
				}
				mark := nodes[rng.Intn(len(nodes))]
				n := &Node[int]{Value: op}
				l.InsertBefore(n, mark)
				nodes = append(nodes, n)
				for i, v := range ref {
					if v == mark.Value {
						ref = append(ref[:i], append([]int{op}, ref[i:]...)...)
						break
					}
				}
			case 4: // remove a random node
				if len(nodes) == 0 {
					continue
				}
				i := rng.Intn(len(nodes))
				n := nodes[i]
				l.Remove(n)
				nodes[i] = nodes[len(nodes)-1]
				nodes = nodes[:len(nodes)-1]
				for j, v := range ref {
					if v == n.Value {
						ref = append(ref[:j], ref[j+1:]...)
						break
					}
				}
			}
			if !l.CheckInvariants() {
				return false
			}
		}
		return equal(collect(l), ref) && l.Len() == len(ref)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
