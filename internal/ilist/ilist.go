// Package ilist implements the doubly-linked timer list that underlies
// every list-based scheme in the paper.
//
// Section 3.2 observes that STOP_TIMER need not search the list if the
// list is doubly linked and START_TIMER stores a pointer to the element:
// cancellation is then O(1) "and this can be used by any timer scheme".
// Node is that stored pointer. The list is generic over the element
// payload and instruments every pointer read/write through an optional
// metrics.Cost sink so the schemes built on it reproduce the paper's
// operation counts without scattering accounting code.
package ilist

import "timingwheels/internal/metrics"

// Node is one list element. A Node belongs to at most one List at a time;
// its zero value is detached. Nodes are allocated by callers (typically
// embedded in a timer record) and threaded by the List.
type Node[T any] struct {
	next, prev *Node[T]
	owner      *List[T]
	// Value is the caller's payload.
	Value T
}

// Next returns the following node in the owner list, or nil at the tail or
// for a detached node.
func (n *Node[T]) Next() *Node[T] {
	if n.owner == nil {
		return nil
	}
	if nx := n.next; nx != &n.owner.root {
		return nx
	}
	return nil
}

// Prev returns the preceding node in the owner list, or nil at the head or
// for a detached node.
func (n *Node[T]) Prev() *Node[T] {
	if n.owner == nil {
		return nil
	}
	if pv := n.prev; pv != &n.owner.root {
		return pv
	}
	return nil
}

// Attached reports whether the node is currently linked into a list.
func (n *Node[T]) Attached() bool { return n.owner != nil }

// Detach unlinks the node from whatever list currently holds it,
// reporting whether it was attached. It is the O(1) STOP_TIMER primitive
// for schemes (like the hierarchical wheel) where the holding list
// changes over the timer's lifetime.
func (n *Node[T]) Detach() bool {
	if n.owner == nil {
		return false
	}
	n.owner.Remove(n)
	return true
}

// List is an intrusive circular doubly-linked list with a sentinel root.
// The zero value must be initialized with Init (or created by New) before
// use.
type List[T any] struct {
	root Node[T]
	len  int
	cost *metrics.Cost
}

// New returns an initialized empty list that records operation costs into
// cost (which may be nil for no accounting).
func New[T any](cost *metrics.Cost) *List[T] {
	l := &List[T]{}
	l.Init(cost)
	return l
}

// Init (re)initializes l to an empty list recording into cost. Any nodes
// previously linked are abandoned without being detached.
func (l *List[T]) Init(cost *metrics.Cost) {
	l.root.next = &l.root
	l.root.prev = &l.root
	l.root.owner = l
	l.len = 0
	l.cost = cost
}

// initialized reports whether Init has run.
func (l *List[T]) initialized() bool { return l.root.next != nil }

// lazyInit makes the zero List usable, matching container/list behaviour.
func (l *List[T]) lazyInit() {
	if !l.initialized() {
		l.Init(nil)
	}
}

// Len reports the number of nodes in the list. O(1).
func (l *List[T]) Len() int { return l.len }

// Empty reports whether the list has no nodes.
func (l *List[T]) Empty() bool { return l.len == 0 }

// Front returns the first node, or nil if the list is empty.
func (l *List[T]) Front() *Node[T] {
	if l.len == 0 {
		return nil
	}
	return l.root.next
}

// Back returns the last node, or nil if the list is empty.
func (l *List[T]) Back() *Node[T] {
	if l.len == 0 {
		return nil
	}
	return l.root.prev
}

// insertAfter links n after at. The paper's insert cost (section 7: 13
// cheap instructions for Scheme 6) is dominated by exactly these pointer
// writes; we count 2 reads (neighbor pointers) and 4 writes (the splice).
func (l *List[T]) insertAfter(n, at *Node[T]) {
	if n.owner != nil {
		panic("ilist: node already attached")
	}
	l.cost.Read(2)
	l.cost.Write(4)
	nx := at.next
	at.next = n
	n.prev = at
	n.next = nx
	nx.prev = n
	n.owner = l
	l.len++
}

// PushFront inserts n at the head of the list. Panics if n is attached.
func (l *List[T]) PushFront(n *Node[T]) {
	l.lazyInit()
	l.insertAfter(n, &l.root)
}

// PushBack inserts n at the tail of the list. Panics if n is attached.
func (l *List[T]) PushBack(n *Node[T]) {
	l.lazyInit()
	l.insertAfter(n, l.root.prev)
}

// InsertBefore inserts n immediately before mark, which must belong to l.
func (l *List[T]) InsertBefore(n, mark *Node[T]) {
	if mark.owner != l {
		panic("ilist: mark is not in this list")
	}
	l.insertAfter(n, mark.prev)
}

// InsertAfter inserts n immediately after mark, which must belong to l.
func (l *List[T]) InsertAfter(n, mark *Node[T]) {
	if mark.owner != l {
		panic("ilist: mark is not in this list")
	}
	l.insertAfter(n, mark)
}

// Remove unlinks n from l in O(1). It panics if n is not in l. The splice
// costs 2 reads and 2 writes, matching the paper's cheap delete (7
// instructions including bookkeeping).
func (l *List[T]) Remove(n *Node[T]) {
	if n.owner != l {
		panic("ilist: node is not in this list")
	}
	l.cost.Read(2)
	l.cost.Write(2)
	n.prev.next = n.next
	n.next.prev = n.prev
	n.next = nil
	n.prev = nil
	n.owner = nil
	l.len--
}

// PopFront removes and returns the first node, or nil if empty.
func (l *List[T]) PopFront() *Node[T] {
	n := l.Front()
	if n != nil {
		l.Remove(n)
	}
	return n
}

// TakeChain severs the entire list in O(1) and returns its head as a
// nil-terminated singly-walkable chain (follow with Unchain), leaving l
// empty. This is the hot-path "deliver the whole slot" primitive: where
// TakeAll pays one splice (4 pointer writes) per node plus a slice
// append, TakeChain pays 4 pointer writes total, and the consumer clears
// each node's links during the walk it performs anyway.
//
// Until a chained node is passed through Unchain it still reports
// Attached() and must not be inserted into any list; the consumer must
// drain the whole chain promptly.
func (l *List[T]) TakeChain() *Node[T] {
	if l.len == 0 {
		return nil
	}
	l.cost.Read(2)
	l.cost.Write(4)
	head := l.root.next
	tail := l.root.prev
	head.prev = nil
	tail.next = nil
	l.root.next = &l.root
	l.root.prev = &l.root
	l.len = 0
	return head
}

// Unchain clears n's links and ownership — completing the detach that
// TakeChain deferred — and returns the next node in the chain (nil at
// the end). After Unchain the node is fully detached and may be
// reinserted into a list or recycled.
func (n *Node[T]) Unchain() *Node[T] {
	next := n.next
	n.next = nil
	n.prev = nil
	n.owner = nil
	return next
}

// TakeAll detaches every node and returns them in order. It is the
// "remove and process all events in the list" step of wheel expiry; the
// caller iterates without further list mutation cost.
func (l *List[T]) TakeAll() []*Node[T] {
	if l.len == 0 {
		return nil
	}
	out := make([]*Node[T], 0, l.len)
	for l.len > 0 {
		out = append(out, l.PopFront())
	}
	return out
}

// Do calls fn for each node in order. fn must not add or remove nodes.
func (l *List[T]) Do(fn func(*Node[T])) {
	if !l.initialized() {
		return
	}
	for n := l.root.next; n != &l.root; n = n.next {
		fn(n)
	}
}

// CheckInvariants verifies link integrity (used by property tests): the
// ring is consistent, every node's owner is l, and Len matches the walk.
// It returns false on the first violation.
func (l *List[T]) CheckInvariants() bool {
	if !l.initialized() {
		return l.len == 0
	}
	count := 0
	for n := l.root.next; n != &l.root; n = n.next {
		if n.owner != l {
			return false
		}
		if n.next.prev != n || n.prev.next != n {
			return false
		}
		count++
		if count > l.len {
			return false
		}
	}
	return count == l.len
}
