package pq

import "timingwheels/internal/metrics"

// pairingNode is one node of a pairing heap: child points to the first
// child, sibling to the next sibling, and prev to the previous sibling
// (or the parent, for a first child) — the standard threaded
// representation that makes arbitrary cut O(1).
type pairingNode[T any] struct {
	key                  int64
	seq                  seq
	value                T
	child, sibling, prev *pairingNode[T]
	owner                *Pairing[T]
	removed              bool
}

func (*pairingNode[T]) pqHandle() {}

// Pairing is a pairing heap — the structure the event-set literature
// the paper cites (Vaucher & Duval [6], Reeves [4]) converged on as the
// practical winner among self-adjusting heaps: O(1) insert and meld,
// O(log n) amortized delete-min, and a trivially O(1) arbitrary cut
// followed by a meld for handle-based removal.
type Pairing[T any] struct {
	root *pairingNode[T]
	n    int
	cost *metrics.Cost
	nseq seq
}

// NewPairing returns an empty pairing heap charging comparisons to cost.
func NewPairing[T any](cost *metrics.Cost) *Pairing[T] {
	return &Pairing[T]{cost: cost}
}

// Name returns "pairing".
func (p *Pairing[T]) Name() string { return "pairing" }

// Len reports the number of items.
func (p *Pairing[T]) Len() int { return p.n }

// Insert adds v with the given key in O(1).
func (p *Pairing[T]) Insert(key int64, v T) Handle {
	nd := &pairingNode[T]{key: key, seq: p.nseq, value: v, owner: p}
	p.nseq++
	p.cost.Write(1)
	p.root = p.meld(p.root, nd)
	p.n++
	return nd
}

// Min returns the root item.
func (p *Pairing[T]) Min() (int64, T, bool) {
	if p.root == nil {
		var zero T
		return 0, zero, false
	}
	p.cost.Read(1)
	return p.root.key, p.root.value, true
}

// PopMin removes the root and two-pass-melds its children.
func (p *Pairing[T]) PopMin() (int64, T, bool) {
	if p.root == nil {
		var zero T
		return 0, zero, false
	}
	nd := p.root
	p.root = p.mergePairs(nd.child)
	if p.root != nil {
		p.root.prev = nil
		p.root.sibling = nil
	}
	p.release(nd)
	return nd.key, nd.value, true
}

// Remove cuts the node out of the tree and melds the pieces.
func (p *Pairing[T]) Remove(hd Handle) bool {
	nd, ok := hd.(*pairingNode[T])
	if !ok || nd.owner != p || nd.removed {
		return false
	}
	if nd == p.root {
		p.PopMin()
		return true
	}
	p.cut(nd)
	sub := p.mergePairs(nd.child)
	p.root = p.meld(p.root, sub)
	p.release(nd)
	return true
}

// release marks a node dead and clears its links.
func (p *Pairing[T]) release(nd *pairingNode[T]) {
	nd.child, nd.sibling, nd.prev = nil, nil, nil
	nd.removed = true
	p.n--
}

// cut detaches nd (and its subtree) from its parent/sibling chain.
func (p *Pairing[T]) cut(nd *pairingNode[T]) {
	p.cost.Write(2)
	if nd.prev.child == nd { // first child: prev is the parent
		nd.prev.child = nd.sibling
	} else {
		nd.prev.sibling = nd.sibling
	}
	if nd.sibling != nil {
		nd.sibling.prev = nd.prev
	}
	nd.sibling, nd.prev = nil, nil
}

// meld links the larger-rooted heap as the first child of the smaller.
func (p *Pairing[T]) meld(a, b *pairingNode[T]) *pairingNode[T] {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if less(p.cost, b.key, b.seq, a.key, a.seq) {
		a, b = b, a
	}
	p.cost.Write(3)
	b.sibling = a.child
	if a.child != nil {
		a.child.prev = b
	}
	b.prev = a
	a.child = b
	return a
}

// mergePairs performs the standard two-pass pairing of a sibling list.
func (p *Pairing[T]) mergePairs(first *pairingNode[T]) *pairingNode[T] {
	if first == nil {
		return nil
	}
	// Pass 1: meld adjacent pairs left to right.
	var pairs []*pairingNode[T]
	for first != nil {
		a := first
		b := a.sibling
		var next *pairingNode[T]
		if b != nil {
			next = b.sibling
			b.sibling, b.prev = nil, nil
		}
		a.sibling, a.prev = nil, nil
		pairs = append(pairs, p.meld(a, b))
		first = next
	}
	// Pass 2: meld right to left.
	res := pairs[len(pairs)-1]
	for i := len(pairs) - 2; i >= 0; i-- {
		res = p.meld(pairs[i], res)
	}
	res.prev = nil
	res.sibling = nil
	return res
}

// CheckInvariants verifies heap order and the prev/sibling threading.
func (p *Pairing[T]) CheckInvariants() bool {
	if p.root == nil {
		return p.n == 0
	}
	if p.root.prev != nil || p.root.sibling != nil {
		return false
	}
	count := 0
	var walk func(n, parent *pairingNode[T]) bool
	walk = func(n, parent *pairingNode[T]) bool {
		for first := true; n != nil; n = n.sibling {
			count++
			if n.owner != p || n.removed {
				return false
			}
			if parent != nil {
				if n.key < parent.key || (n.key == parent.key && n.seq < parent.seq) {
					return false
				}
				if first {
					if n.prev != parent {
						return false
					}
				} else if n.prev.sibling != n {
					return false
				}
			}
			if n.child != nil && !walk(n.child, n) {
				return false
			}
			first = false
		}
		return true
	}
	if !walk(p.root.child, p.root) {
		return false
	}
	count++ // the root itself
	return count == p.n
}
