package pq

import "timingwheels/internal/metrics"

// leftistNode is one node of a leftist tree. Parent pointers support
// arbitrary deletion; npl is the null-path length (leftist invariant:
// npl(left) >= npl(right) at every node).
type leftistNode[T any] struct {
	key                 int64
	seq                 seq
	value               T
	left, right, parent *leftistNode[T]
	npl                 int
	owner               *Leftist[T]
	removed             bool
}

func (*leftistNode[T]) pqHandle() {}

// Leftist is a leftist tree ("leftist-trees" are cited by section 4.1.1
// via Reeves [4] and Vaucher & Duval [6]). Insert, PopMin, and Remove are
// O(log n); Min is O(1). Its defining virtue is an O(log n) meld, which
// the removal path uses to splice out interior nodes.
type Leftist[T any] struct {
	root *leftistNode[T]
	n    int
	cost *metrics.Cost
	nseq seq
}

// NewLeftist returns an empty leftist tree charging comparisons to cost.
func NewLeftist[T any](cost *metrics.Cost) *Leftist[T] {
	return &Leftist[T]{cost: cost}
}

// Name returns "leftist".
func (l *Leftist[T]) Name() string { return "leftist" }

// Len reports the number of items.
func (l *Leftist[T]) Len() int { return l.n }

// Insert adds v with the given key by melding a singleton.
func (l *Leftist[T]) Insert(key int64, v T) Handle {
	nd := &leftistNode[T]{key: key, seq: l.nseq, value: v, npl: 1, owner: l}
	l.nseq++
	l.cost.Write(1)
	l.root = l.meld(l.root, nd)
	l.root.parent = nil
	l.n++
	return nd
}

// Min returns the root item.
func (l *Leftist[T]) Min() (int64, T, bool) {
	if l.root == nil {
		var zero T
		return 0, zero, false
	}
	l.cost.Read(1)
	return l.root.key, l.root.value, true
}

// PopMin removes the root by melding its children.
func (l *Leftist[T]) PopMin() (int64, T, bool) {
	if l.root == nil {
		var zero T
		return 0, zero, false
	}
	nd := l.root
	l.detach(nd)
	return nd.key, nd.value, true
}

// Remove deletes the item behind hd in O(log n).
func (l *Leftist[T]) Remove(hd Handle) bool {
	nd, ok := hd.(*leftistNode[T])
	if !ok || nd.owner != l || nd.removed {
		return false
	}
	l.detach(nd)
	return true
}

// detach removes nd from the tree: meld its subtrees, splice the result
// into nd's parent slot, then restore npl/leftist shape up the ancestor
// chain.
func (l *Leftist[T]) detach(nd *leftistNode[T]) {
	sub := l.meld(nd.left, nd.right)
	parent := nd.parent
	if sub != nil {
		sub.parent = parent
	}
	if parent == nil {
		l.root = sub
	} else {
		l.cost.Write(1)
		if parent.left == nd {
			parent.left = sub
		} else {
			parent.right = sub
		}
		l.fixUp(parent)
	}
	nd.left, nd.right, nd.parent = nil, nil, nil
	nd.removed = true
	l.n--
}

// fixUp restores the leftist invariant and npl values from p to the root,
// stopping early once nothing changes.
func (l *Leftist[T]) fixUp(p *leftistNode[T]) {
	for p != nil {
		if npl(p.left) < npl(p.right) {
			l.cost.Write(2)
			p.left, p.right = p.right, p.left
		}
		newNpl := npl(p.right) + 1
		if p.npl == newNpl {
			return
		}
		l.cost.Write(1)
		p.npl = newNpl
		p = p.parent
	}
}

func npl[T any](n *leftistNode[T]) int {
	if n == nil {
		return 0
	}
	return n.npl
}

// meld merges two leftist trees, returning the new root (parent pointer
// of the result is left for the caller to set).
func (l *Leftist[T]) meld(a, b *leftistNode[T]) *leftistNode[T] {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if less(l.cost, b.key, b.seq, a.key, a.seq) {
		a, b = b, a
	}
	// a is the smaller root; meld b into a's right spine.
	r := l.meld(a.right, b)
	a.right = r
	r.parent = a
	l.cost.Write(2)
	if npl(a.left) < npl(a.right) {
		a.left, a.right = a.right, a.left
		l.cost.Write(2)
	}
	a.npl = npl(a.right) + 1
	return a
}

// CheckInvariants verifies heap order, leftist shape, parent pointers,
// and the node count.
func (l *Leftist[T]) CheckInvariants() bool {
	count := 0
	var walk func(n, parent *leftistNode[T]) bool
	walk = func(n, parent *leftistNode[T]) bool {
		if n == nil {
			return true
		}
		count++
		if n.parent != parent || n.owner != l || n.removed {
			return false
		}
		if parent != nil {
			if n.key < parent.key || (n.key == parent.key && n.seq < parent.seq) {
				return false
			}
		}
		if npl(n.left) < npl(n.right) || n.npl != npl(n.right)+1 {
			return false
		}
		return walk(n.left, n) && walk(n.right, n)
	}
	return walk(l.root, nil) && count == l.n
}
