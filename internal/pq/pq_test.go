package pq

import (
	"sort"
	"testing"
	"testing/quick"

	"timingwheels/internal/dist"
	"timingwheels/internal/metrics"
)

// queues constructs one of each implementation.
func queues(cost *metrics.Cost) map[string]Queue[int] {
	return map[string]Queue[int]{
		"heap":    NewHeap[int](cost),
		"leftist": NewLeftist[int](cost),
		"skew":    NewSkew[int](cost),
		"bst":     NewBST[int](cost),
		"avl":     NewAVL[int](cost),
		"pairing": NewPairing[int](cost),
	}
}

func TestEmptyQueue(t *testing.T) {
	for name, q := range queues(nil) {
		t.Run(name, func(t *testing.T) {
			if q.Len() != 0 {
				t.Fatal("new queue should be empty")
			}
			if _, _, ok := q.Min(); ok {
				t.Fatal("Min on empty queue should report !ok")
			}
			if _, _, ok := q.PopMin(); ok {
				t.Fatal("PopMin on empty queue should report !ok")
			}
			if !q.CheckInvariants() {
				t.Fatal("empty invariants")
			}
		})
	}
}

func TestInsertPopSorted(t *testing.T) {
	keys := []int64{5, 3, 8, 1, 9, 2, 7, 4, 6, 0, 5, 3}
	for name, q := range queues(nil) {
		t.Run(name, func(t *testing.T) {
			for i, k := range keys {
				q.Insert(k, i)
			}
			if q.Len() != len(keys) {
				t.Fatalf("Len=%d want %d", q.Len(), len(keys))
			}
			want := append([]int64(nil), keys...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			for i, wk := range want {
				k, _, ok := q.PopMin()
				if !ok || k != wk {
					t.Fatalf("pop %d: key=%d ok=%v want %d", i, k, ok, wk)
				}
				if !q.CheckInvariants() {
					t.Fatalf("invariants broken after pop %d", i)
				}
			}
		})
	}
}

// TestFIFOTies checks that equal keys pop in insertion order in every
// implementation.
func TestFIFOTies(t *testing.T) {
	for name, q := range queues(nil) {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 10; i++ {
				q.Insert(42, i)
			}
			q.Insert(1, 99)
			if _, v, _ := q.PopMin(); v != 99 {
				t.Fatalf("smaller key should pop first, got %d", v)
			}
			for i := 0; i < 10; i++ {
				_, v, ok := q.PopMin()
				if !ok || v != i {
					t.Fatalf("tie pop %d: got %d ok=%v", i, v, ok)
				}
			}
		})
	}
}

func TestMinDoesNotRemove(t *testing.T) {
	for name, q := range queues(nil) {
		t.Run(name, func(t *testing.T) {
			q.Insert(3, 30)
			q.Insert(1, 10)
			for i := 0; i < 3; i++ {
				k, v, ok := q.Min()
				if !ok || k != 1 || v != 10 {
					t.Fatalf("Min=%d,%d,%v", k, v, ok)
				}
			}
			if q.Len() != 2 {
				t.Fatal("Min must not remove")
			}
		})
	}
}

func TestRemoveByHandle(t *testing.T) {
	for name, q := range queues(nil) {
		t.Run(name, func(t *testing.T) {
			h1 := q.Insert(1, 1)
			h2 := q.Insert(2, 2)
			h3 := q.Insert(3, 3)
			if !q.Remove(h2) {
				t.Fatal("Remove(h2) should succeed")
			}
			if q.Remove(h2) {
				t.Fatal("double Remove should fail")
			}
			if !q.CheckInvariants() {
				t.Fatal("invariants after remove")
			}
			if k, _, _ := q.PopMin(); k != 1 {
				t.Fatalf("first pop key=%d", k)
			}
			if k, _, _ := q.PopMin(); k != 3 {
				t.Fatalf("second pop key=%d", k)
			}
			_ = h1
			_ = h3
		})
	}
}

func TestRemoveRoot(t *testing.T) {
	for name, q := range queues(nil) {
		t.Run(name, func(t *testing.T) {
			h1 := q.Insert(1, 1)
			q.Insert(2, 2)
			if !q.Remove(h1) {
				t.Fatal("Remove(root) should succeed")
			}
			if k, _, ok := q.Min(); !ok || k != 2 {
				t.Fatalf("Min after root removal: %d %v", k, ok)
			}
		})
	}
}

func TestForeignHandleRejected(t *testing.T) {
	for name := range queues(nil) {
		t.Run(name, func(t *testing.T) {
			qs1 := queues(nil)
			qs2 := queues(nil)
			h := qs1[name].Insert(1, 1)
			if qs2[name].Remove(h) {
				t.Fatal("foreign handle should be rejected")
			}
			// Cross-implementation handles must also be rejected.
			for other, q2 := range qs2 {
				if other == name {
					continue
				}
				if q2.Remove(h) {
					t.Fatalf("%s accepted a %s handle", other, name)
				}
			}
		})
	}
}

// TestBSTDegeneration reproduces the paper's warning: monotonically
// increasing keys (equal timer intervals against an advancing clock)
// build a right spine, making the unbalanced BST linear.
func TestBSTDegeneration(t *testing.T) {
	bst := NewBST[int](nil)
	n := 512
	for i := 0; i < n; i++ {
		bst.Insert(int64(i), i)
	}
	if h := bst.Height(); h != n {
		t.Fatalf("monotone insert height=%d, want %d (degenerate spine)", h, n)
	}
	// Random keys stay shallow by comparison.
	bst2 := NewBST[int](nil)
	rng := dist.NewRNG(7)
	for i := 0; i < n; i++ {
		bst2.Insert(rng.Int63(), i)
	}
	if h := bst2.Height(); h >= n/4 {
		t.Fatalf("random insert height=%d, unexpectedly deep", h)
	}
}

// TestAVLStaysBalanced is the counterpoint to TestBSTDegeneration: the
// same monotone key sequence leaves the AVL tree at logarithmic height.
func TestAVLStaysBalanced(t *testing.T) {
	avl := NewAVL[int](nil)
	const n = 4096
	for i := 0; i < n; i++ {
		avl.Insert(int64(i), i)
		if i%512 == 0 && !avl.CheckInvariants() {
			t.Fatalf("invariants broken at insert %d", i)
		}
	}
	// AVL height bound: 1.44*log2(n+2) ~ 18 for n=4096.
	if h := avl.Height(); h > 18 {
		t.Fatalf("monotone insert height=%d, want <= 18", h)
	}
	if !avl.CheckInvariants() {
		t.Fatal("invariants after monotone inserts")
	}
}

// TestBalancedDeletionCostsMoreThanUnbalanced reproduces the Figure 6
// note: removing from the balanced tree pays for rebalancing, so its
// deletion writes exceed the unbalanced BST's splice on comparable
// shapes.
func TestBalancedDeletionCostsMoreThanUnbalanced(t *testing.T) {
	var costAVL, costBST metrics.Cost
	avl := NewAVL[int](&costAVL)
	bst := NewBST[int](&costBST)
	rng := dist.NewRNG(13)
	var ha, hb []Handle
	for i := 0; i < 4096; i++ {
		k := rng.Int63()
		ha = append(ha, avl.Insert(k, i))
		hb = append(hb, bst.Insert(k, i))
	}
	costAVL.Reset()
	costBST.Reset()
	for i := 0; i < 1024; i++ {
		j := rng.Intn(len(ha))
		avl.Remove(ha[j])
		bst.Remove(hb[j])
		ha[j] = ha[len(ha)-1]
		hb[j] = hb[len(hb)-1]
		ha = ha[:len(ha)-1]
		hb = hb[:len(hb)-1]
	}
	if costAVL.Writes <= costBST.Writes {
		t.Fatalf("AVL deletion writes %d should exceed BST %d (rebalancing)",
			costAVL.Writes, costBST.Writes)
	}
	if !avl.CheckInvariants() || !bst.CheckInvariants() {
		t.Fatal("invariants after deletions")
	}
}

// TestCostComparisonsGrow sanity-checks the cost instrumentation: a
// larger heap charges more comparisons per insert on average.
func TestCostComparisonsGrow(t *testing.T) {
	var costSmall, costBig metrics.Cost
	small := NewHeap[int](&costSmall)
	big := NewHeap[int](&costBig)
	rng := dist.NewRNG(11)
	for i := 0; i < 15; i++ {
		small.Insert(rng.Int63(), i)
	}
	for i := 0; i < 4095; i++ {
		big.Insert(rng.Int63(), i)
	}
	costSmall.Reset()
	costBig.Reset()
	for i := 0; i < 200; i++ {
		small.Insert(rng.Int63(), i)
		big.Insert(rng.Int63(), i)
	}
	if costBig.Compares <= costSmall.Compares {
		t.Fatalf("big heap compares %d <= small heap %d", costBig.Compares, costSmall.Compares)
	}
}

// TestQuickAgainstReference drives each implementation against a sorted
// reference multiset through random insert/pop/remove sequences.
func TestQuickAgainstReference(t *testing.T) {
	for name := range queues(nil) {
		name := name
		t.Run(name, func(t *testing.T) {
			check := func(seed uint64) bool {
				q := queues(nil)[name]
				rng := dist.NewRNG(seed)
				type item struct {
					key int64
					h   Handle
					id  int
				}
				var live []item
				nextID := 0
				var popped []int64
				var wantPopped []int64
				for op := 0; op < 400; op++ {
					switch rng.Intn(4) {
					case 0, 1: // insert
						k := int64(rng.Intn(50))
						h := q.Insert(k, nextID)
						live = append(live, item{key: k, h: h, id: nextID})
						nextID++
					case 2: // pop min
						k, _, ok := q.PopMin()
						if !ok {
							if len(live) != 0 {
								return false
							}
							continue
						}
						popped = append(popped, k)
						// reference: remove the minimum (key, earliest id)
						best := -1
						for i, it := range live {
							if best < 0 || it.key < live[best].key ||
								(it.key == live[best].key && it.id < live[best].id) {
								best = i
							}
						}
						wantPopped = append(wantPopped, live[best].key)
						live = append(live[:best], live[best+1:]...)
					case 3: // remove random handle
						if len(live) == 0 {
							continue
						}
						i := rng.Intn(len(live))
						if !q.Remove(live[i].h) {
							return false
						}
						live = append(live[:i], live[i+1:]...)
					}
					if q.Len() != len(live) {
						return false
					}
					if !q.CheckInvariants() {
						return false
					}
				}
				if len(popped) != len(wantPopped) {
					return false
				}
				for i := range popped {
					if popped[i] != wantPopped[i] {
						return false
					}
				}
				return true
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
