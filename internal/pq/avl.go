package pq

import "timingwheels/internal/metrics"

// avlNode is one node of the AVL tree, ordered by (key, seq).
type avlNode[T any] struct {
	key                 int64
	seq                 seq
	value               T
	left, right, parent *avlNode[T]
	height              int // height of the subtree rooted here (leaf = 1)
	owner               *AVL[T]
	removed             bool
}

func (*avlNode[T]) pqHandle() {}

// AVL is a height-balanced binary search tree — the "balanced binary
// tree" point in the paper's Scheme 3 family. Section 4.1.1 reports
// (citing Myhrhaug [7]) that unbalanced trees are cheaper than balanced
// ones on typical inputs, and Figure 6's note records the price of
// balance: STOP_TIMER becomes O(log n) "because of the need to rebalance
// the tree after a deletion". In exchange, the AVL tree cannot
// degenerate: equal timer intervals that collapse the plain BST into a
// list leave it at height ~1.44 log n.
type AVL[T any] struct {
	root *avlNode[T]
	n    int
	cost *metrics.Cost
	nseq seq
}

// NewAVL returns an empty AVL tree charging comparisons to cost.
func NewAVL[T any](cost *metrics.Cost) *AVL[T] {
	return &AVL[T]{cost: cost}
}

// Name returns "avl".
func (t *AVL[T]) Name() string { return "avl" }

// Len reports the number of items.
func (t *AVL[T]) Len() int { return t.n }

func height[T any](n *avlNode[T]) int {
	if n == nil {
		return 0
	}
	return n.height
}

func (t *AVL[T]) updateHeight(n *avlNode[T]) {
	h := height(n.left)
	if r := height(n.right); r > h {
		h = r
	}
	n.height = h + 1
	t.cost.Write(1)
}

func balance[T any](n *avlNode[T]) int {
	return height(n.left) - height(n.right)
}

// replaceChild points parent's link at old to repl (repl may be nil).
func (t *AVL[T]) replaceChild(old, repl *avlNode[T]) {
	t.cost.Write(1)
	switch {
	case old.parent == nil:
		t.root = repl
	case old.parent.left == old:
		old.parent.left = repl
	default:
		old.parent.right = repl
	}
	if repl != nil {
		repl.parent = old.parent
	}
}

// rotateLeft rotates n with its right child, returning the new subtree
// root.
func (t *AVL[T]) rotateLeft(n *avlNode[T]) *avlNode[T] {
	r := n.right
	t.cost.Write(3)
	t.replaceChild(n, r)
	n.right = r.left
	if n.right != nil {
		n.right.parent = n
	}
	r.left = n
	n.parent = r
	t.updateHeight(n)
	t.updateHeight(r)
	return r
}

// rotateRight rotates n with its left child, returning the new subtree
// root.
func (t *AVL[T]) rotateRight(n *avlNode[T]) *avlNode[T] {
	l := n.left
	t.cost.Write(3)
	t.replaceChild(n, l)
	n.left = l.right
	if n.left != nil {
		n.left.parent = n
	}
	l.right = n
	n.parent = l
	t.updateHeight(n)
	t.updateHeight(l)
	return l
}

// rebalance restores AVL balance factors from n up to the root — the
// per-deletion rebalancing Figure 6's note prices at O(log n).
func (t *AVL[T]) rebalance(n *avlNode[T]) {
	for n != nil {
		oldHeight := n.height
		t.updateHeight(n)
		switch b := balance(n); {
		case b > 1:
			if balance(n.left) < 0 {
				t.rotateLeft(n.left)
			}
			n = t.rotateRight(n)
		case b < -1:
			if balance(n.right) > 0 {
				t.rotateRight(n.right)
			}
			n = t.rotateLeft(n)
		}
		if n.height == oldHeight && balance(n) >= -1 && balance(n) <= 1 {
			// Height unchanged and balanced: ancestors are unaffected.
			// (Insertions stop here; deletions may still shorten above,
			// so only stop when the height really did not change.)
			return
		}
		n = n.parent
	}
}

// Insert adds v with the given key in O(log n).
func (t *AVL[T]) Insert(key int64, v T) Handle {
	nd := &avlNode[T]{key: key, seq: t.nseq, value: v, height: 1, owner: t}
	t.nseq++
	t.cost.Write(1)
	if t.root == nil {
		t.root = nd
		t.n++
		return nd
	}
	cur := t.root
	for {
		t.cost.Read(1)
		if less(t.cost, nd.key, nd.seq, cur.key, cur.seq) {
			if cur.left == nil {
				cur.left = nd
				break
			}
			cur = cur.left
		} else {
			if cur.right == nil {
				cur.right = nd
				break
			}
			cur = cur.right
		}
	}
	nd.parent = cur
	t.cost.Write(2)
	t.n++
	t.rebalance(cur)
	return nd
}

// Min returns the leftmost item in O(log n).
func (t *AVL[T]) Min() (int64, T, bool) {
	if t.root == nil {
		var zero T
		return 0, zero, false
	}
	nd := t.leftmost(t.root)
	return nd.key, nd.value, true
}

// PopMin removes and returns the leftmost item in O(log n).
func (t *AVL[T]) PopMin() (int64, T, bool) {
	if t.root == nil {
		var zero T
		return 0, zero, false
	}
	nd := t.leftmost(t.root)
	t.unlink(nd)
	return nd.key, nd.value, true
}

// Remove deletes the item behind hd in O(log n), including rebalancing.
func (t *AVL[T]) Remove(hd Handle) bool {
	nd, ok := hd.(*avlNode[T])
	if !ok || nd.owner != t || nd.removed {
		return false
	}
	t.unlink(nd)
	return true
}

func (t *AVL[T]) leftmost(nd *avlNode[T]) *avlNode[T] {
	for nd.left != nil {
		t.cost.Read(1)
		nd = nd.left
	}
	return nd
}

// unlink removes nd and rebalances from the structurally lowest changed
// node upward.
func (t *AVL[T]) unlink(nd *avlNode[T]) {
	var fixFrom *avlNode[T]
	switch {
	case nd.left == nil:
		fixFrom = nd.parent
		t.replaceChild(nd, nd.right)
	case nd.right == nil:
		fixFrom = nd.parent
		t.replaceChild(nd, nd.left)
	default:
		succ := t.leftmost(nd.right)
		if succ.parent != nd {
			fixFrom = succ.parent
			t.replaceChild(succ, succ.right)
			succ.right = nd.right
			succ.right.parent = succ
			t.cost.Write(2)
		} else {
			fixFrom = succ
		}
		t.replaceChild(nd, succ)
		succ.left = nd.left
		succ.left.parent = succ
		succ.height = nd.height
		t.cost.Write(3)
	}
	nd.left, nd.right, nd.parent = nil, nil, nil
	nd.removed = true
	t.n--
	if fixFrom != nil {
		t.rebalance(fixFrom)
	}
}

// Height reports the tree height (0 for empty).
func (t *AVL[T]) Height() int { return height(t.root) }

// CheckInvariants verifies search order, parent pointers, stored
// heights, AVL balance, and the node count.
func (t *AVL[T]) CheckInvariants() bool {
	count := 0
	var walk func(n, parent *avlNode[T]) (int, bool)
	walk = func(n, parent *avlNode[T]) (int, bool) {
		if n == nil {
			return 0, true
		}
		count++
		if n.parent != parent || n.owner != t || n.removed {
			return 0, false
		}
		if n.left != nil {
			if !less(nil, n.left.key, n.left.seq, n.key, n.seq) {
				return 0, false
			}
		}
		if n.right != nil {
			if less(nil, n.right.key, n.right.seq, n.key, n.seq) {
				return 0, false
			}
		}
		lh, ok := walk(n.left, n)
		if !ok {
			return 0, false
		}
		rh, ok := walk(n.right, n)
		if !ok {
			return 0, false
		}
		h := lh
		if rh > h {
			h = rh
		}
		h++
		if n.height != h {
			return 0, false
		}
		if lh-rh > 1 || rh-lh > 1 {
			return 0, false
		}
		return h, true
	}
	_, ok := walk(t.root, nil)
	return ok && count == t.n
}
