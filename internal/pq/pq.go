// Package pq implements the priority queues behind Scheme 3 of the paper
// ("tree-based algorithms", section 4.1.1): a binary heap, a leftist tree,
// a skew heap, and an unbalanced binary search tree. The paper cites
// heaps, leftist trees, and unbalanced binary trees as the structures
// that reduce START_TIMER from O(n) to O(log n) — and notes that
// unbalanced trees "easily degenerate into a linear list" when equal
// timer intervals are inserted, which the BST here faithfully does.
//
// All queues support O(1)-handle arbitrary removal (the doubly-linked-
// list trick of section 3.2 translated to trees: START_TIMER keeps a node
// pointer so STOP_TIMER never searches) and report key comparisons
// through a metrics.Cost sink.
//
// Ties are broken by insertion order so that timers scheduled for the
// same tick fire FIFO, which also gives the queues a strict weak order
// (the paper notes simulators require FIFO ties; timer modules don't, but
// determinism makes the cross-scheme conformance suite exact).
package pq

import "timingwheels/internal/metrics"

// Queue is a min-priority queue keyed by int64 (absolute expiry tick)
// carrying payloads of type T. Implementations are not safe for
// concurrent use.
type Queue[T any] interface {
	// Name reports the implementation's short name ("heap", "bst", ...).
	Name() string

	// Len reports the number of items in the queue.
	Len() int

	// Insert adds a payload with the given key and returns a handle for
	// later removal. Handles are owned by the queue that issued them.
	Insert(key int64, v T) Handle

	// Min returns the smallest-keyed item without removing it. ok is
	// false if the queue is empty.
	Min() (key int64, v T, ok bool)

	// PopMin removes and returns the smallest-keyed item. ok is false if
	// the queue is empty. Equal keys pop in insertion order.
	PopMin() (key int64, v T, ok bool)

	// Remove deletes the item behind h. It returns false if the handle
	// was already removed or belongs to another queue.
	Remove(h Handle) bool

	// CheckInvariants verifies the structure's internal ordering/shape
	// invariants, for property tests.
	CheckInvariants() bool
}

// Handle is an opaque reference to one inserted item.
type Handle interface{ pqHandle() }

// seq disambiguates equal keys: lower seq = inserted earlier = pops first.
type seq uint64

// less orders (key, seq) pairs lexicographically, charging one comparison
// to the cost sink. The seq tiebreak is deliberate: it is what makes
// equal-key behaviour deterministic across all four implementations.
func less(cost *metrics.Cost, k1 int64, s1 seq, k2 int64, s2 seq) bool {
	cost.Compare(1)
	if k1 != k2 {
		return k1 < k2
	}
	return s1 < s2
}
