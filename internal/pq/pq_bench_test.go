package pq

import (
	"fmt"
	"testing"

	"timingwheels/internal/dist"
)

// benchQueue builds a fresh queue of the named kind.
func benchQueue(name string) Queue[int] {
	switch name {
	case "leftist":
		return NewLeftist[int](nil)
	case "skew":
		return NewSkew[int](nil)
	case "bst":
		return NewBST[int](nil)
	case "avl":
		return NewAVL[int](nil)
	case "pairing":
		return NewPairing[int](nil)
	default:
		return NewHeap[int](nil)
	}
}

var kindNames = []string{"heap", "leftist", "skew", "bst", "avl", "pairing"}

// BenchmarkPQInsertRemove measures a random-key insert+remove pair at a
// resident population of n.
func BenchmarkPQInsertRemove(b *testing.B) {
	for _, name := range kindNames {
		for _, n := range []int{256, 16384} {
			b.Run(fmt.Sprintf("%s/n=%d", name, n), func(b *testing.B) {
				q := benchQueue(name)
				rng := dist.NewRNG(1)
				for i := 0; i < n; i++ {
					q.Insert(rng.Int63(), i)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					h := q.Insert(rng.Int63(), i)
					if !q.Remove(h) {
						b.Fatal("remove failed")
					}
				}
			})
		}
	}
}

// BenchmarkPQPopMin measures drain throughput: insert a key then pop the
// minimum, holding the population steady.
func BenchmarkPQPopMin(b *testing.B) {
	for _, name := range kindNames {
		b.Run(name, func(b *testing.B) {
			q := benchQueue(name)
			rng := dist.NewRNG(2)
			for i := 0; i < 4096; i++ {
				q.Insert(rng.Int63(), i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Insert(rng.Int63(), i)
				if _, _, ok := q.PopMin(); !ok {
					b.Fatal("pop failed")
				}
			}
		})
	}
}

// BenchmarkPQMonotoneInsert measures the degenerate-input case: strictly
// increasing keys (equal timer intervals). The plain BST goes quadratic;
// the AVL tree and heaps do not.
func BenchmarkPQMonotoneInsert(b *testing.B) {
	for _, name := range kindNames {
		b.Run(name, func(b *testing.B) {
			q := benchQueue(name)
			key := int64(0)
			// Bound resident size so the BST's O(n) spine cost is
			// measured at a fixed, comparable n.
			for i := 0; i < 2048; i++ {
				q.Insert(key, i)
				key++
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h := q.Insert(key, i)
				key++
				q.Remove(h)
			}
		})
	}
}
