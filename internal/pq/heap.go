package pq

import "timingwheels/internal/metrics"

// heapItem is one binary-heap slot. The index back-pointer makes
// arbitrary removal O(log n) without a search.
type heapItem[T any] struct {
	key   int64
	seq   seq
	value T
	index int // position in the heap slice, -1 once removed
	owner *Heap[T]
}

func (*heapItem[T]) pqHandle() {}

// Heap is a binary min-heap. Insert and PopMin are O(log n); Min is O(1);
// Remove by handle is O(log n).
type Heap[T any] struct {
	items []*heapItem[T]
	cost  *metrics.Cost
	nseq  seq
}

// NewHeap returns an empty binary heap charging comparisons to cost
// (which may be nil).
func NewHeap[T any](cost *metrics.Cost) *Heap[T] {
	return &Heap[T]{cost: cost}
}

// Name returns "heap".
func (h *Heap[T]) Name() string { return "heap" }

// Len reports the number of items.
func (h *Heap[T]) Len() int { return len(h.items) }

// Insert adds v with the given key in O(log n).
func (h *Heap[T]) Insert(key int64, v T) Handle {
	it := &heapItem[T]{key: key, seq: h.nseq, value: v, index: len(h.items), owner: h}
	h.nseq++
	h.items = append(h.items, it)
	h.cost.Write(1)
	h.siftUp(it.index)
	return it
}

// Min returns the root without removing it.
func (h *Heap[T]) Min() (int64, T, bool) {
	if len(h.items) == 0 {
		var zero T
		return 0, zero, false
	}
	h.cost.Read(1)
	it := h.items[0]
	return it.key, it.value, true
}

// PopMin removes and returns the root.
func (h *Heap[T]) PopMin() (int64, T, bool) {
	if len(h.items) == 0 {
		var zero T
		return 0, zero, false
	}
	it := h.items[0]
	h.removeAt(0)
	return it.key, it.value, true
}

// Remove deletes the item behind hd in O(log n). It returns false for
// foreign or already-removed handles.
func (h *Heap[T]) Remove(hd Handle) bool {
	it, ok := hd.(*heapItem[T])
	if !ok || it.owner != h || it.index < 0 {
		return false
	}
	h.removeAt(it.index)
	return true
}

func (h *Heap[T]) removeAt(i int) {
	n := len(h.items) - 1
	it := h.items[i]
	if i != n {
		h.swap(i, n)
	}
	h.items = h.items[:n]
	h.cost.Write(1)
	it.index = -1
	if i < n {
		// The displaced element may need to move either direction.
		if !h.siftDown(i) {
			h.siftUp(i)
		}
	}
}

func (h *Heap[T]) lessIdx(i, j int) bool {
	a, b := h.items[i], h.items[j]
	return less(h.cost, a.key, a.seq, b.key, b.seq)
}

func (h *Heap[T]) swap(i, j int) {
	h.cost.Write(2)
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].index = i
	h.items[j].index = j
}

func (h *Heap[T]) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.lessIdx(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

// siftDown returns true if the element moved.
func (h *Heap[T]) siftDown(i int) bool {
	moved := false
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && h.lessIdx(right, left) {
			least = right
		}
		if !h.lessIdx(least, i) {
			break
		}
		h.swap(i, least)
		i = least
		moved = true
	}
	return moved
}

// CheckInvariants verifies the heap property and index back-pointers.
func (h *Heap[T]) CheckInvariants() bool {
	for i, it := range h.items {
		if it.index != i || it.owner != h {
			return false
		}
		parent := (i - 1) / 2
		if i > 0 {
			p := h.items[parent]
			if it.key < p.key || (it.key == p.key && it.seq < p.seq) {
				return false
			}
		}
	}
	return true
}
