package pq

import "timingwheels/internal/metrics"

// bstNode is one node of the unbalanced binary search tree, ordered by
// (key, seq).
type bstNode[T any] struct {
	key                 int64
	seq                 seq
	value               T
	left, right, parent *bstNode[T]
	owner               *BST[T]
	removed             bool
}

func (*bstNode[T]) pqHandle() {}

// BST is an unbalanced binary search tree. Section 4.1.1 reports (citing
// Myhrhaug [7]) that unbalanced binary trees are cheaper than balanced
// ones for typical inputs, but "easily degenerate into a linear list ...
// if a set of equal timer intervals are inserted". This implementation
// keeps that property on purpose: equal intervals produce monotonically
// increasing absolute expiry keys, which build a right spine and make
// Insert O(n). Experiment E3 demonstrates exactly this collapse.
type BST[T any] struct {
	root *bstNode[T]
	n    int
	cost *metrics.Cost
	nseq seq
}

// NewBST returns an empty unbalanced binary search tree charging
// comparisons to cost.
func NewBST[T any](cost *metrics.Cost) *BST[T] {
	return &BST[T]{cost: cost}
}

// Name returns "bst".
func (t *BST[T]) Name() string { return "bst" }

// Len reports the number of items.
func (t *BST[T]) Len() int { return t.n }

// Insert adds v with the given key in O(height).
func (t *BST[T]) Insert(key int64, v T) Handle {
	nd := &bstNode[T]{key: key, seq: t.nseq, value: v, owner: t}
	t.nseq++
	t.cost.Write(1)
	if t.root == nil {
		t.root = nd
		t.n++
		return nd
	}
	cur := t.root
	for {
		t.cost.Read(1)
		if less(t.cost, nd.key, nd.seq, cur.key, cur.seq) {
			if cur.left == nil {
				cur.left = nd
				break
			}
			cur = cur.left
		} else {
			if cur.right == nil {
				cur.right = nd
				break
			}
			cur = cur.right
		}
	}
	nd.parent = cur
	t.cost.Write(2)
	t.n++
	return nd
}

// Min returns the leftmost item in O(height).
func (t *BST[T]) Min() (int64, T, bool) {
	if t.root == nil {
		var zero T
		return 0, zero, false
	}
	nd := t.leftmost(t.root)
	return nd.key, nd.value, true
}

// PopMin removes and returns the leftmost item in O(height).
func (t *BST[T]) PopMin() (int64, T, bool) {
	if t.root == nil {
		var zero T
		return 0, zero, false
	}
	nd := t.leftmost(t.root)
	t.unlink(nd)
	return nd.key, nd.value, true
}

// Remove deletes the item behind hd in O(height).
func (t *BST[T]) Remove(hd Handle) bool {
	nd, ok := hd.(*bstNode[T])
	if !ok || nd.owner != t || nd.removed {
		return false
	}
	t.unlink(nd)
	return true
}

func (t *BST[T]) leftmost(nd *bstNode[T]) *bstNode[T] {
	for nd.left != nil {
		t.cost.Read(1)
		nd = nd.left
	}
	return nd
}

// replaceChild points parent's link at nd to repl (repl may be nil).
func (t *BST[T]) replaceChild(nd, repl *bstNode[T]) {
	t.cost.Write(1)
	switch {
	case nd.parent == nil:
		t.root = repl
	case nd.parent.left == nd:
		nd.parent.left = repl
	default:
		nd.parent.right = repl
	}
	if repl != nil {
		repl.parent = nd.parent
	}
}

// unlink removes nd with the standard BST deletion: zero/one-child nodes
// splice out directly; two-child nodes are replaced by their in-order
// successor.
func (t *BST[T]) unlink(nd *bstNode[T]) {
	switch {
	case nd.left == nil:
		t.replaceChild(nd, nd.right)
	case nd.right == nil:
		t.replaceChild(nd, nd.left)
	default:
		succ := t.leftmost(nd.right)
		if succ.parent != nd {
			t.replaceChild(succ, succ.right)
			succ.right = nd.right
			succ.right.parent = succ
			t.cost.Write(2)
		}
		t.replaceChild(nd, succ)
		succ.left = nd.left
		succ.left.parent = succ
		t.cost.Write(2)
	}
	nd.left, nd.right, nd.parent = nil, nil, nil
	nd.removed = true
	t.n--
}

// Height reports the tree height (0 for empty); E3 uses it to show the
// right-spine degeneration under constant intervals.
func (t *BST[T]) Height() int {
	var h func(*bstNode[T]) int
	h = func(n *bstNode[T]) int {
		if n == nil {
			return 0
		}
		l, r := h(n.left), h(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return h(t.root)
}

// CheckInvariants verifies the search-tree order, parent pointers, and
// node count.
func (t *BST[T]) CheckInvariants() bool {
	count := 0
	var walk func(n, parent *bstNode[T], hasLo bool, loK int64, loS seq, hasHi bool, hiK int64, hiS seq) bool
	walk = func(n, parent *bstNode[T], hasLo bool, loK int64, loS seq, hasHi bool, hiK int64, hiS seq) bool {
		if n == nil {
			return true
		}
		count++
		if n.parent != parent || n.owner != t || n.removed {
			return false
		}
		if hasLo && (n.key < loK || (n.key == loK && n.seq < loS)) {
			return false
		}
		if hasHi && (n.key > hiK || (n.key == hiK && n.seq > hiS)) {
			return false
		}
		return walk(n.left, n, hasLo, loK, loS, true, n.key, n.seq) &&
			walk(n.right, n, true, n.key, n.seq, hasHi, hiK, hiS)
	}
	return walk(t.root, nil, false, 0, 0, false, 0, 0) && count == t.n
}
