package pq

import "timingwheels/internal/metrics"

// skewNode is one node of a skew heap.
type skewNode[T any] struct {
	key                 int64
	seq                 seq
	value               T
	left, right, parent *skewNode[T]
	owner               *Skew[T]
	removed             bool
}

func (*skewNode[T]) pqHandle() {}

// Skew is a skew heap: a self-adjusting meldable heap with O(log n)
// amortized operations and no balance bookkeeping at all (no npl field).
// It rounds out the Scheme 3 family as the "simplest possible meldable
// heap" point in the design space; E3 compares its constants against the
// binary heap and leftist tree.
type Skew[T any] struct {
	root *skewNode[T]
	n    int
	cost *metrics.Cost
	nseq seq
}

// NewSkew returns an empty skew heap charging comparisons to cost.
func NewSkew[T any](cost *metrics.Cost) *Skew[T] {
	return &Skew[T]{cost: cost}
}

// Name returns "skew".
func (s *Skew[T]) Name() string { return "skew" }

// Len reports the number of items.
func (s *Skew[T]) Len() int { return s.n }

// Insert adds v with the given key by melding a singleton.
func (s *Skew[T]) Insert(key int64, v T) Handle {
	nd := &skewNode[T]{key: key, seq: s.nseq, value: v, owner: s}
	s.nseq++
	s.cost.Write(1)
	s.root = s.meld(s.root, nd)
	s.root.parent = nil
	s.n++
	return nd
}

// Min returns the root item.
func (s *Skew[T]) Min() (int64, T, bool) {
	if s.root == nil {
		var zero T
		return 0, zero, false
	}
	s.cost.Read(1)
	return s.root.key, s.root.value, true
}

// PopMin removes the root by melding its children.
func (s *Skew[T]) PopMin() (int64, T, bool) {
	if s.root == nil {
		var zero T
		return 0, zero, false
	}
	nd := s.root
	s.detach(nd)
	return nd.key, nd.value, true
}

// Remove deletes the item behind hd (amortized O(log n)).
func (s *Skew[T]) Remove(hd Handle) bool {
	nd, ok := hd.(*skewNode[T])
	if !ok || nd.owner != s || nd.removed {
		return false
	}
	s.detach(nd)
	return true
}

func (s *Skew[T]) detach(nd *skewNode[T]) {
	sub := s.meld(nd.left, nd.right)
	if sub != nil {
		sub.parent = nd.parent
	}
	s.cost.Write(1)
	switch {
	case nd.parent == nil:
		s.root = sub
	case nd.parent.left == nd:
		nd.parent.left = sub
	default:
		nd.parent.right = sub
	}
	nd.left, nd.right, nd.parent = nil, nil, nil
	nd.removed = true
	s.n--
}

// meld merges two skew heaps iteratively along the right spines, swapping
// children unconditionally (the "skew" self-adjustment).
func (s *Skew[T]) meld(a, b *skewNode[T]) *skewNode[T] {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if less(s.cost, b.key, b.seq, a.key, a.seq) {
		a, b = b, a
	}
	root := a
	for {
		// Swap a's children, then continue melding b into the (new) right
		// subtree — the standard top-down skew meld.
		s.cost.Write(2)
		a.left, a.right = a.right, a.left
		if a.left == nil {
			a.left = b
			b.parent = a
			s.cost.Write(2)
			break
		}
		next := a.left
		if less(s.cost, b.key, b.seq, next.key, next.seq) {
			a.left = b
			b.parent = a
			s.cost.Write(2)
			a, b = b, next
		} else {
			a = next
		}
	}
	return root
}

// CheckInvariants verifies heap order, parent pointers, and node count.
func (s *Skew[T]) CheckInvariants() bool {
	count := 0
	var walk func(n, parent *skewNode[T]) bool
	walk = func(n, parent *skewNode[T]) bool {
		if n == nil {
			return true
		}
		count++
		if n.parent != parent || n.owner != s || n.removed {
			return false
		}
		if parent != nil {
			if n.key < parent.key || (n.key == parent.key && n.seq < parent.seq) {
				return false
			}
		}
		return walk(n.left, n) && walk(n.right, n)
	}
	return walk(s.root, nil) && count == s.n
}
