package replica

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"timingwheels/internal/wal"
)

// streamSeeds builds the fuzz seed corpus: a clean stream, a mid-frame
// truncation, a bit-flipped frame, a duplicated tail, and junk.
// Committed regression seeds live in testdata/fuzz/FuzzReplicaStream
// (regenerate with WAL_GEN_SEEDS=1 go test -run TestGenerateStreamSeeds).
func streamSeeds(tb testing.TB) [][]byte {
	dir, err := os.MkdirTemp("", "replica-seeds")
	if err != nil {
		tb.Fatal(err)
	}
	defer os.RemoveAll(dir)
	l, _, err := wal.Open(dir, wal.Options{SyncEvery: 1})
	if err != nil {
		tb.Fatal(err)
	}
	defer l.Close()
	recs := []wal.Record{
		{Op: wal.OpSchedule, ID: 1, Class: 1, Deadline: 100, Payload: []byte("payload-a")},
		{Op: wal.OpSchedule, ID: 2, Lease: 9, Deadline: 200},
		{Op: wal.OpLeaseGrant, ID: 9, Deadline: 500},
		{Op: wal.OpCancel, ID: 1},
		{Op: wal.OpFire, ID: 2},
		{Op: wal.OpHighWater, ID: 2},
	}
	for _, r := range recs {
		if _, err := l.Append(r); err != nil {
			tb.Fatal(err)
		}
	}
	pos := l.FollowPos()
	clean, err := l.ReadDurable(pos.Epoch, 0, 0)
	if err != nil {
		tb.Fatal(err)
	}
	truncated := append([]byte(nil), clean[:len(clean)-5]...)
	flipped := append([]byte(nil), clean...)
	flipped[len(flipped)/2] ^= 0x40
	dup := append(append([]byte(nil), clean...), clean...)
	return [][]byte{
		nil,
		clean,
		truncated,
		flipped,
		dup,
		[]byte("HTTP/1.1 502 Bad Gateway\r\n\r\nupstream error"), // a proxy error page on the stream
		make([]byte, 300), // zero-filled block
	}
}

// FuzzReplicaStream feeds arbitrary bytes — chunked as a flaky network
// would deliver them — to the follower's frame decoder and state. The
// invariants: never panic, decode deterministically (chunked == whole),
// apply only CRC-valid records, keep the conservation ledger closed,
// and stay usable after Reset on corruption.
func FuzzReplicaStream(f *testing.F) {
	for _, s := range streamSeeds(f) {
		f.Add(s)
	}
	probe := streamProbe(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		// Reference decode: the whole buffer at once.
		var whole wal.FrameDecoder
		whole.Write(data)
		var refRecs []wal.Record
		refCorrupt := false
		for {
			rec, n, err := whole.Next()
			if err != nil {
				refCorrupt = true
				break
			}
			if n == 0 {
				break
			}
			if rec.Op == 0 {
				t.Fatal("decoded record with zero op")
			}
			refRecs = append(refRecs, rec)
		}

		// Streamed decode: chunk sizes derived from the data itself.
		var dec wal.FrameDecoder
		st := wal.NewState()
		chunk := 1
		if len(data) > 0 {
			chunk = 1 + int(data[0])%61
		}
		var gotRecs []wal.Record
		gotCorrupt := false
		for off := 0; off < len(data) && !gotCorrupt; off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			dec.Write(data[off:end])
			for {
				rec, n, err := dec.Next()
				if err != nil {
					// The follower's response: drop the tail, re-fetch from
					// the cursor. Here we just stop, like the reference.
					dec.Reset()
					gotCorrupt = true
					break
				}
				if n == 0 {
					break
				}
				st.Apply(rec)
				gotRecs = append(gotRecs, rec)
			}
		}

		// Chunked and whole decodes read the same bytes through the same
		// scanner: they must agree on corruption and on every record.
		if gotCorrupt != refCorrupt {
			t.Fatalf("chunked corrupt=%v, whole corrupt=%v (got %d recs, ref %d)", gotCorrupt, refCorrupt, len(gotRecs), len(refRecs))
		}
		if len(gotRecs) != len(refRecs) {
			t.Fatalf("chunked decoded %d records, whole decoded %d", len(gotRecs), len(refRecs))
		}
		for i := range refRecs {
			if gotRecs[i].Op != refRecs[i].Op || gotRecs[i].ID != refRecs[i].ID || gotRecs[i].Deadline != refRecs[i].Deadline {
				t.Fatalf("record %d diverged: chunked %+v, whole %+v", i, gotRecs[i], refRecs[i])
			}
		}

		// Whatever arrived, the ledger must close.
		if st.Scheduled != st.Fired+st.Cancelled+uint64(len(st.Timers)) {
			t.Fatalf("ledger open: scheduled=%d fired=%d cancelled=%d outstanding=%d",
				st.Scheduled, st.Fired, st.Cancelled, len(st.Timers))
		}

		// The decoder survives the abuse: a clean frame still decodes.
		dec.Reset()
		dec.Write(probe)
		rec, n, err := dec.Next()
		if err != nil || n != len(probe) || rec.ID != 424242 {
			t.Fatalf("decoder unusable after fuzz input: (%+v, %d, %v)", rec, n, err)
		}
	})
}

// streamProbe renders one known frame for the post-abuse probe.
func streamProbe(tb testing.TB) []byte {
	dir, err := os.MkdirTemp("", "replica-probe")
	if err != nil {
		tb.Fatal(err)
	}
	defer os.RemoveAll(dir)
	l, _, err := wal.Open(dir, wal.Options{SyncEvery: 1})
	if err != nil {
		tb.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(wal.Record{Op: wal.OpSchedule, ID: 424242, Deadline: 7}); err != nil {
		tb.Fatal(err)
	}
	pos := l.FollowPos()
	b, err := l.ReadDurable(pos.Epoch, 0, 0)
	if err != nil {
		tb.Fatal(err)
	}
	return b
}

// TestGenerateStreamSeeds writes the seed corpus to testdata so the
// regression inputs are committed alongside the code. Skipped unless
// WAL_GEN_SEEDS=1.
func TestGenerateStreamSeeds(t *testing.T) {
	if os.Getenv("WAL_GEN_SEEDS") == "" {
		t.Skip("set WAL_GEN_SEEDS=1 to regenerate testdata/fuzz corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzReplicaStream")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range streamSeeds(t) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
