// Package replica implements warm-standby replication for the durable
// timer daemon: a primary-side Streamer that serves the WAL's durable
// frames over HTTP, and a Follower that pulls the seed snapshot plus
// segment tail, applies records through wal.State, and journals them
// into its own WAL so a later promotion is itself durable.
//
// The design is classic log shipping with the invariants the rest of
// the repo already enforces doing the correctness work:
//
//   - Single writer. Only the primary appends; the follower replays the
//     identical byte stream. There is no merge and no conflict.
//   - Commit point, not stream point. The Streamer serves only bytes
//     covered by an fsync (wal.Log's durable prefix), so a follower can
//     never apply — and a promoted standby can never fire — a record
//     whose admission was not acknowledged to a client.
//   - Frame integrity end to end. Every frame re-verifies its CRC-32C in
//     the follower's decoder; a partition that truncates mid-frame
//     parks the decoder on a partial frame, and a corrupted byte
//     surfaces as wal.ErrCorruptFrame, which the follower answers by
//     discarding its buffer and re-fetching from its last good cursor.
//   - Epoch fencing. Cursors name (epoch, offset); when the primary
//     compacts, the old epoch returns 410 and the follower re-seeds
//     from the new snapshot. Terms (monotonic, bumped by promotion)
//     fence a deposed primary out of the write path.
package replica

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"timingwheels/internal/wal"
)

// Replication protocol headers. Every stream and snapshot response
// carries the primary's position so the follower can report lag without
// a second round trip; term rides along for fencing.
const (
	// HeaderEpoch is the active WAL epoch of the serving node.
	HeaderEpoch = "X-Twd-Epoch"
	// HeaderDurableBytes is the durable byte length of the active
	// segment — the furthest a cursor may read.
	HeaderDurableBytes = "X-Twd-Durable-Bytes"
	// HeaderDurableLSN is the LSN of the last durable record.
	HeaderDurableLSN = "X-Twd-Durable-Lsn"
	// HeaderSegBaseLSN is the LSN of the last record not in the active
	// segment: segment frame k (1-based) has LSN SegBaseLSN+k.
	HeaderSegBaseLSN = "X-Twd-Segbase-Lsn"
	// HeaderTerm is the serving node's term (see cmd/twd fencing).
	HeaderTerm = "X-Twd-Term"
)

// Source is the follow surface the Streamer reads. *wal.Log satisfies
// it.
type Source interface {
	FollowPos() wal.FollowPos
	ReadDurable(epoch uint64, off int64, max int) ([]byte, error)
	SnapshotSeed() (uint64, []byte, error)
}

// Streamer serves a WAL's durable frames to followers. Mount
// ServeSnapshot and ServeStream on the primary's HTTP mux.
type Streamer struct {
	// Src is the log being streamed.
	Src Source
	// Term reports the serving node's fencing term; nil means term 0.
	Term func() uint64
	// MaxChunk bounds one stream response's body; 0 means 1 MiB.
	MaxChunk int
	// MaxWait bounds a caught-up stream request's long poll; 0 means 2s.
	// The server's write timeout must exceed it.
	MaxWait time.Duration
	// Poll is the long poll's re-check cadence; 0 means 10ms.
	Poll time.Duration
}

func (s *Streamer) maxChunk() int {
	if s.MaxChunk > 0 {
		return s.MaxChunk
	}
	return 1 << 20
}

func (s *Streamer) maxWait() time.Duration {
	if s.MaxWait > 0 {
		return s.MaxWait
	}
	return 2 * time.Second
}

func (s *Streamer) poll() time.Duration {
	if s.Poll > 0 {
		return s.Poll
	}
	return 10 * time.Millisecond
}

// setPosHeaders stamps pos and the term onto a response.
func (s *Streamer) setPosHeaders(w http.ResponseWriter, pos wal.FollowPos) {
	h := w.Header()
	h.Set(HeaderEpoch, strconv.FormatUint(pos.Epoch, 10))
	h.Set(HeaderDurableBytes, strconv.FormatInt(pos.DurableBytes, 10))
	h.Set(HeaderDurableLSN, strconv.FormatUint(pos.DurableLSN, 10))
	h.Set(HeaderSegBaseLSN, strconv.FormatUint(pos.SegBaseLSN, 10))
	var term uint64
	if s.Term != nil {
		term = s.Term()
	}
	h.Set(HeaderTerm, strconv.FormatUint(term, 10))
}

// ServeSnapshot answers GET with the active epoch's seed snapshot: the
// framed records that epoch starts from (an empty body for epoch 0,
// which has no seed). The position headers are taken against the same
// epoch, so the follower can trust SegBaseLSN for its applied-LSN
// arithmetic.
func (s *Streamer) ServeSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	for tries := 0; tries < 8; tries++ {
		epoch, data, err := s.Src.SnapshotSeed()
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		pos := s.Src.FollowPos()
		if pos.Epoch != epoch {
			continue // rotated between the two reads; retry for a stable pair
		}
		s.setPosHeaders(w, pos)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(len(data)))
		w.WriteHeader(http.StatusOK)
		w.Write(data)
		return
	}
	http.Error(w, "snapshot kept racing rotation", http.StatusServiceUnavailable)
}

// ServeStream answers GET ?epoch=E&offset=O[&wait=D] with durable
// segment bytes from (E, O): 200 with up to MaxChunk bytes, or — when
// the cursor is caught up — a long poll bounded by min(wait, MaxWait)
// that returns 200 with an empty body if nothing lands. 410 Gone means
// the epoch was compacted away (re-seed); 416 means the offset is
// beyond the durable boundary (a corrupt cursor; re-seed).
func (s *Streamer) ServeStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	epoch, err := strconv.ParseUint(q.Get("epoch"), 10, 64)
	if err != nil {
		http.Error(w, "bad epoch", http.StatusBadRequest)
		return
	}
	off, err := strconv.ParseInt(q.Get("offset"), 10, 64)
	if err != nil || off < 0 {
		http.Error(w, "bad offset", http.StatusBadRequest)
		return
	}
	wait := s.maxWait()
	if ws := q.Get("wait"); ws != "" {
		d, err := time.ParseDuration(ws)
		if err != nil || d < 0 {
			http.Error(w, "bad wait", http.StatusBadRequest)
			return
		}
		if d < wait {
			wait = d
		}
	}

	deadline := time.Now().Add(wait)
	for {
		data, err := s.Src.ReadDurable(epoch, off, s.maxChunk())
		switch {
		case err == wal.ErrEpochGone:
			s.setPosHeaders(w, s.Src.FollowPos())
			http.Error(w, "epoch compacted; re-seed from snapshot", http.StatusGone)
			return
		case err == wal.ErrBadOffset:
			s.setPosHeaders(w, s.Src.FollowPos())
			http.Error(w, "offset beyond durable bytes", http.StatusRequestedRangeNotSatisfiable)
			return
		case err != nil:
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		if len(data) > 0 {
			s.setPosHeaders(w, s.Src.FollowPos())
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Length", strconv.Itoa(len(data)))
			w.WriteHeader(http.StatusOK)
			w.Write(data)
			return
		}
		// Caught up: long-poll for new durable bytes (or a rotation, which
		// the next ReadDurable reports as 410).
		remain := time.Until(deadline)
		if remain <= 0 {
			s.setPosHeaders(w, s.Src.FollowPos())
			w.WriteHeader(http.StatusOK)
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(minDuration(s.poll(), remain)):
		}
	}
}

func minDuration(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

// parsePosHeaders reads the protocol headers off a response. Missing or
// malformed headers surface as an error so a misrouted response (a
// proxy error page, say) cannot be mistaken for an empty poll.
func parsePosHeaders(h http.Header) (pos wal.FollowPos, term uint64, err error) {
	pos.Epoch, err = strconv.ParseUint(h.Get(HeaderEpoch), 10, 64)
	if err != nil {
		return pos, 0, fmt.Errorf("replica: bad %s: %q", HeaderEpoch, h.Get(HeaderEpoch))
	}
	pos.DurableBytes, err = strconv.ParseInt(h.Get(HeaderDurableBytes), 10, 64)
	if err != nil {
		return pos, 0, fmt.Errorf("replica: bad %s: %q", HeaderDurableBytes, h.Get(HeaderDurableBytes))
	}
	pos.DurableLSN, err = strconv.ParseUint(h.Get(HeaderDurableLSN), 10, 64)
	if err != nil {
		return pos, 0, fmt.Errorf("replica: bad %s: %q", HeaderDurableLSN, h.Get(HeaderDurableLSN))
	}
	pos.SegBaseLSN, err = strconv.ParseUint(h.Get(HeaderSegBaseLSN), 10, 64)
	if err != nil {
		return pos, 0, fmt.Errorf("replica: bad %s: %q", HeaderSegBaseLSN, h.Get(HeaderSegBaseLSN))
	}
	term, err = strconv.ParseUint(h.Get(HeaderTerm), 10, 64)
	if err != nil {
		return pos, 0, fmt.Errorf("replica: bad %s: %q", HeaderTerm, h.Get(HeaderTerm))
	}
	return pos, term, nil
}
