package replica

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"timingwheels/internal/wal"
)

// primary bundles a real WAL with a Streamer served over httptest.
type primary struct {
	log  *wal.Log
	srv  *httptest.Server
	term atomic.Uint64
	recs []wal.Record // every record appended, for expected-state builds
}

func newPrimary(t *testing.T) *primary {
	t.Helper()
	l, _, err := wal.Open(t.TempDir(), wal.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := &primary{log: l}
	st := &Streamer{Src: l, Term: p.term.Load, MaxWait: 250 * time.Millisecond, Poll: 2 * time.Millisecond}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/replica/snapshot", st.ServeSnapshot)
	mux.HandleFunc("/v1/replica/stream", st.ServeStream)
	p.srv = httptest.NewServer(mux)
	t.Cleanup(func() { p.srv.Close(); l.Close() })
	return p
}

func (p *primary) append(t *testing.T, recs ...wal.Record) {
	t.Helper()
	for _, r := range recs {
		if _, err := p.log.Append(r); err != nil {
			t.Fatal(err)
		}
		p.recs = append(p.recs, r)
	}
}

// follower bundles a Follower over a real local WAL journal.
type followerRig struct {
	f     *Follower
	dir   string
	jrnl  *wal.Log
	state *wal.State
}

func newFollowerRig(t *testing.T, primaryURL, dir string) *followerRig {
	t.Helper()
	jrnl, res, err := wal.Open(dir, wal.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jrnl.Close() })
	f, err := NewFollower(FollowerConfig{
		Primary:      primaryURL,
		Dir:          dir,
		Journal:      jrnl,
		State:        res.State,
		Wait:         100 * time.Millisecond,
		Backoff:      20 * time.Millisecond,
		PersistEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &followerRig{f: f, dir: dir, jrnl: jrnl, state: res.State}
}

// waitCaughtUp polls until the follower's cursor reaches the primary's
// durable boundary on the primary's current epoch.
func waitCaughtUp(t *testing.T, f *Follower, p *primary) Status {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		pos := p.log.FollowPos()
		st := f.Status()
		if st.Cursor.Epoch == pos.Epoch && st.Cursor.Offset == pos.DurableBytes {
			if st.BytesBehind != 0 || st.RecordsBehind != 0 {
				t.Fatalf("caught up but lag reports %d bytes / %d records", st.BytesBehind, st.RecordsBehind)
			}
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("follower never caught up: status %+v, primary %+v", f.Status(), p.log.FollowPos())
	return Status{}
}

func applyAll(recs []wal.Record) *wal.State {
	st := wal.NewState()
	for _, r := range recs {
		st.Apply(r)
	}
	return st
}

func sameTimers(t *testing.T, got, want *wal.State) {
	t.Helper()
	if len(got.Timers) != len(want.Timers) {
		t.Fatalf("follower has %d timers, want %d", len(got.Timers), len(want.Timers))
	}
	for id, w := range want.Timers {
		g, ok := got.Timers[id]
		if !ok || g.Deadline != w.Deadline || g.Class != w.Class || g.Lease != w.Lease {
			t.Fatalf("timer %d: got %+v, want %+v", id, g, w)
		}
	}
	if got.NextID != want.NextID {
		t.Fatalf("NextID = %d, want %d", got.NextID, want.NextID)
	}
}

// TestFollowerReplicates: live tail streaming — records appended while
// the follower runs arrive, state matches, lag closes to zero.
func TestFollowerReplicates(t *testing.T) {
	p := newPrimary(t)
	p.term.Store(1)
	p.append(t,
		wal.Record{Op: wal.OpSchedule, ID: 1, Deadline: 100, Payload: []byte("a")},
		wal.Record{Op: wal.OpSchedule, ID: 2, Deadline: 200},
		wal.Record{Op: wal.OpCancel, ID: 2},
	)

	rig := newFollowerRig(t, p.srv.URL, t.TempDir())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- rig.f.Run(ctx) }()

	st := waitCaughtUp(t, rig.f, p)
	if st.Cursor.Term != 1 {
		t.Fatalf("observed term = %d, want 1", st.Cursor.Term)
	}
	sameTimers(t, rig.state, applyAll(p.recs))

	// Tail: more records while the follower is live.
	p.append(t,
		wal.Record{Op: wal.OpSchedule, ID: 3, Deadline: 300},
		wal.Record{Op: wal.OpLeaseGrant, ID: 7, Deadline: 999},
		wal.Record{Op: wal.OpSchedule, ID: 4, Lease: 7, Deadline: 400},
		wal.Record{Op: wal.OpFire, ID: 1},
	)
	waitCaughtUp(t, rig.f, p)
	sameTimers(t, rig.state, applyAll(p.recs))
	if len(rig.state.Leases) != 1 || rig.state.Leases[7].Expiry != 999 {
		t.Fatalf("leases = %+v, want lease 7 @999", rig.state.Leases)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestFollowerReseedsAfterCompaction: a primary snapshot mid-follow
// forces a re-seed, and state cancelled during the gap must not
// resurrect.
func TestFollowerReseedsAfterCompaction(t *testing.T) {
	p := newPrimary(t)
	p.append(t,
		wal.Record{Op: wal.OpSchedule, ID: 1, Deadline: 100},
		wal.Record{Op: wal.OpSchedule, ID: 2, Deadline: 200},
	)

	rig := newFollowerRig(t, p.srv.URL, t.TempDir())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go rig.f.Run(ctx)
	waitCaughtUp(t, rig.f, p)

	// Compact: timer 2 was cancelled; the seed carries only timer 1.
	p.append(t, wal.Record{Op: wal.OpCancel, ID: 2})
	if err := p.log.Snapshot([]wal.Record{
		{Op: wal.OpSchedule, ID: 1, Deadline: 100},
		{Op: wal.OpHighWater, ID: 2},
	}); err != nil {
		t.Fatal(err)
	}
	p.append(t, wal.Record{Op: wal.OpSchedule, ID: 3, Deadline: 300})

	st := waitCaughtUp(t, rig.f, p)
	if st.Seeds < 2 {
		t.Fatalf("Seeds = %d, want >= 2 (initial + re-seed)", st.Seeds)
	}
	if _, live := rig.state.Timers[2]; live {
		t.Fatal("cancelled timer 2 resurrected across re-seed")
	}
	if len(rig.state.Timers) != 2 || rig.state.NextID != 3 {
		t.Fatalf("post-reseed state: %d timers, NextID %d; want 2 timers, NextID 3", len(rig.state.Timers), rig.state.NextID)
	}
}

// TestFollowerRestartResumes: Drain persists the cursor; a new follower
// over the recovered journal resumes from it without double-counting.
func TestFollowerRestartResumes(t *testing.T) {
	p := newPrimary(t)
	p.append(t,
		wal.Record{Op: wal.OpSchedule, ID: 1, Deadline: 100},
		wal.Record{Op: wal.OpSchedule, ID: 2, Deadline: 200},
	)

	dir := t.TempDir()
	rig := newFollowerRig(t, p.srv.URL, dir)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := rig.f.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	st := rig.f.Status()
	if st.Cursor.Offset != p.log.FollowPos().DurableBytes {
		t.Fatalf("drained cursor %+v, primary durable %d", st.Cursor, p.log.FollowPos().DurableBytes)
	}
	rig.jrnl.Close()

	// Restart: recover the journal, reload the cursor, stream the tail.
	p.append(t, wal.Record{Op: wal.OpSchedule, ID: 3, Deadline: 300})
	rig2 := newFollowerRig(t, p.srv.URL, dir)
	if got := rig2.f.Status().Cursor; got.Offset != st.Cursor.Offset || got.Epoch != st.Cursor.Epoch {
		t.Fatalf("reloaded cursor %+v, want %+v", got, st.Cursor)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	go rig2.f.Run(ctx2)
	waitCaughtUp(t, rig2.f, p)
	sameTimers(t, rig2.state, applyAll(p.recs))
	want := applyAll(p.recs)
	if rig2.state.Scheduled != want.Scheduled {
		t.Fatalf("Scheduled = %d after restart, want %d (idempotent overlap)", rig2.state.Scheduled, want.Scheduled)
	}
}

// TestFollowerFencedOnTermRegression: a primary answering with a lower
// term than previously observed is a deposed primary; Run must return
// ErrFenced rather than apply its stream.
func TestFollowerFencedOnTermRegression(t *testing.T) {
	p := newPrimary(t)
	p.term.Store(5)
	p.append(t, wal.Record{Op: wal.OpSchedule, ID: 1, Deadline: 100})

	rig := newFollowerRig(t, p.srv.URL, t.TempDir())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- rig.f.Run(ctx) }()
	waitCaughtUp(t, rig.f, p)

	p.term.Store(3) // deposed primary comes back with its stale term
	p.append(t, wal.Record{Op: wal.OpSchedule, ID: 99, Deadline: 900})
	select {
	case err := <-done:
		if !errors.Is(err, ErrFenced) {
			t.Fatalf("Run returned %v, want ErrFenced", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower kept following a term-regressed primary")
	}
	if _, live := rig.state.Timers[99]; live {
		t.Fatal("stale primary's record applied despite fencing")
	}
}

// memJournal is an in-memory Journal for decoder-path tests.
type memJournal struct{ recs []wal.Record }

func (m *memJournal) Append(rec wal.Record) (wal.LSN, error) {
	m.recs = append(m.recs, rec)
	return wal.LSN(len(m.recs)), nil
}
func (m *memJournal) Commit(wal.LSN) error { return nil }
func (m *memJournal) Sync() error          { return nil }
func (m *memJournal) Snapshot(recs []wal.Record) error {
	m.recs = append([]wal.Record(nil), recs...)
	return nil
}

// frameBytes renders records to wire frames via a throwaway WAL.
func frameBytes(t *testing.T, recs ...wal.Record) []byte {
	t.Helper()
	l, _, err := wal.Open(t.TempDir(), wal.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for _, r := range recs {
		if _, err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	pos := l.FollowPos()
	b, err := l.ReadDurable(pos.Epoch, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestApplyPartialAndCorrupt drives the follower's apply path directly:
// a mid-frame truncation parks the decoder (cursor unmoved), the rest
// of the frame completes it, and a corrupted chunk triggers a resync
// that leaves the cursor on the last good frame.
func TestApplyPartialAndCorrupt(t *testing.T) {
	f, err := NewFollower(FollowerConfig{
		Primary: "http://unused.invalid",
		Dir:     t.TempDir(),
		Journal: &memJournal{},
		State:   wal.NewState(),
	})
	if err != nil {
		t.Fatal(err)
	}
	f.seeded = true

	frame1 := frameBytes(t, wal.Record{Op: wal.OpSchedule, ID: 1, Deadline: 100, Payload: []byte("xyz")})
	frame2 := frameBytes(t, wal.Record{Op: wal.OpSchedule, ID: 2, Deadline: 200})

	// Truncate mid-frame: no progress, no error, cursor unmoved.
	half := len(frame1) / 2
	progressed, err := f.apply(frame1[:half])
	if progressed || err != nil {
		t.Fatalf("partial frame: progressed=%v err=%v", progressed, err)
	}
	if f.Status().Cursor.Offset != 0 {
		t.Fatalf("cursor moved on partial frame: %+v", f.Status().Cursor)
	}
	// The rest completes it.
	progressed, err = f.apply(frame1[half:])
	if !progressed || err != nil {
		t.Fatalf("completing frame: progressed=%v err=%v", progressed, err)
	}
	if got := f.Status().Cursor.Offset; got != int64(len(frame1)) {
		t.Fatalf("cursor = %d after frame1, want %d", got, len(frame1))
	}

	// Corrupt: a flipped byte surfaces as a resync, cursor stays put.
	bad := append([]byte(nil), frame2...)
	bad[len(bad)-1] ^= 0xff
	progressed, err = f.apply(bad)
	if progressed || err == nil {
		t.Fatalf("corrupt frame: progressed=%v err=%v, want resync error", progressed, err)
	}
	st := f.Status()
	if st.Resyncs != 1 || st.Cursor.Offset != int64(len(frame1)) {
		t.Fatalf("after corruption: Resyncs=%d cursor=%d, want 1, %d", st.Resyncs, st.Cursor.Offset, len(frame1))
	}
	// The clean re-fetch applies.
	progressed, err = f.apply(frame2)
	if !progressed || err != nil {
		t.Fatalf("clean refetch: progressed=%v err=%v", progressed, err)
	}
	if got := f.Status().Cursor.Offset; got != int64(len(frame1)+len(frame2)) {
		t.Fatalf("cursor = %d after refetch, want %d", got, len(frame1)+len(frame2))
	}
	if f.Status().FramesApplied != 2 {
		t.Fatalf("FramesApplied = %d, want 2", f.Status().FramesApplied)
	}
}

// TestStreamerHTTPContract pins the raw endpoint behavior a non-Go
// follower would code against: long-poll empty 200, 410 on a compacted
// epoch, 416 past the durable boundary, position headers everywhere.
func TestStreamerHTTPContract(t *testing.T) {
	p := newPrimary(t)
	p.term.Store(2)
	p.append(t, wal.Record{Op: wal.OpSchedule, ID: 1, Deadline: 100})
	pos := p.log.FollowPos()

	get := func(url string) *http.Response {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	// Caught-up long poll: 200, empty body, headers present.
	start := time.Now()
	resp := get(p.srv.URL + "/v1/replica/stream?epoch=0&offset=" + itoa(pos.DurableBytes) + "&wait=80ms")
	if resp.StatusCode != http.StatusOK || resp.ContentLength > 0 {
		t.Fatalf("caught-up poll: %s, len %d", resp.Status, resp.ContentLength)
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("long poll returned in %v, want >= ~80ms", elapsed)
	}
	hpos, term, err := parsePosHeaders(resp.Header)
	if err != nil || term != 2 || hpos.DurableBytes != pos.DurableBytes {
		t.Fatalf("headers: pos=%+v term=%d err=%v", hpos, term, err)
	}

	// Past the durable boundary: 416.
	if resp := get(p.srv.URL + "/v1/replica/stream?epoch=0&offset=999999"); resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Fatalf("past-durable: %s, want 416", resp.Status)
	}

	// Compacted epoch: 410.
	if err := p.log.Snapshot([]wal.Record{{Op: wal.OpSchedule, ID: 1, Deadline: 100}}); err != nil {
		t.Fatal(err)
	}
	if resp := get(p.srv.URL + "/v1/replica/stream?epoch=0&offset=0"); resp.StatusCode != http.StatusGone {
		t.Fatalf("stale epoch: %s, want 410", resp.Status)
	}

	// Malformed cursor: 400.
	if resp := get(p.srv.URL + "/v1/replica/stream?epoch=x&offset=0"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad epoch: %s, want 400", resp.Status)
	}
}

func itoa(v int64) string {
	b := [20]byte{}
	i := len(b)
	if v == 0 {
		return "0"
	}
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// TestFollowerTinyChunks pins the refetch-overlap contract: when the
// streamer cuts chunks mid-frame (MaxChunk smaller than a frame), the
// follower must fetch past its buffered partial tail instead of
// re-reading it — otherwise the duplicated prefix mis-frames the
// stream and every chunk boundary costs a spurious resync.
func TestFollowerTinyChunks(t *testing.T) {
	l, _, err := wal.Open(t.TempDir(), wal.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	p := &primary{log: l}
	p.term.Store(1)
	st := &Streamer{Src: l, Term: p.term.Load,
		MaxChunk: 7, MaxWait: 50 * time.Millisecond, Poll: 2 * time.Millisecond}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/replica/snapshot", st.ServeSnapshot)
	mux.HandleFunc("/v1/replica/stream", st.ServeStream)
	p.srv = httptest.NewServer(mux)
	defer p.srv.Close()

	for i := uint64(1); i <= 8; i++ {
		p.append(t, wal.Record{Op: wal.OpSchedule, ID: i, Deadline: int64(i * 100),
			Payload: []byte("payload-payload")})
	}

	rig := newFollowerRig(t, p.srv.URL, t.TempDir())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- rig.f.Run(ctx) }()

	fst := waitCaughtUp(t, rig.f, p)
	sameTimers(t, rig.state, applyAll(p.recs))
	if fst.Resyncs != 0 {
		t.Fatalf("Resyncs = %d on a clean mid-frame-chunked stream, want 0", fst.Resyncs)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
}
