package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sync"
	"time"

	"timingwheels/internal/wal"
)

// Journal is the follower's local durability surface. *wal.Log
// satisfies it. The follower appends every record it applies, so a
// promotion replays from local disk exactly like a boot — replication
// state never lives only in memory.
type Journal interface {
	Append(rec wal.Record) (wal.LSN, error)
	Commit(lsn wal.LSN) error
	Sync() error
	Snapshot(records []wal.Record) error
}

// Cursor names a position in the primary's WAL: a byte offset into one
// epoch's segment, plus the LSN arithmetic needed for record lag.
// Offsets only ever advance by whole decoded frames, so a persisted
// cursor is frame-aligned by construction.
type Cursor struct {
	// Epoch is the primary epoch this offset indexes.
	Epoch uint64 `json:"epoch"`
	// Offset is the applied byte prefix of that epoch's segment.
	Offset int64 `json:"offset"`
	// AppliedLSN is the primary LSN of the last applied record
	// (SegBaseLSN + frames applied this epoch).
	AppliedLSN wal.LSN `json:"applied_lsn"`
	// Term is the highest primary term observed.
	Term uint64 `json:"term"`
}

// Status is the follower's health snapshot, surfaced by twd's /healthz
// and /metrics in standby mode.
type Status struct {
	// Cursor is the current replication cursor.
	Cursor Cursor
	// PrimaryPos is the primary's last-reported position.
	PrimaryPos wal.FollowPos
	// BytesBehind and RecordsBehind measure lag against PrimaryPos.
	// Negative never occurs: a re-seed resets the cursor first.
	BytesBehind   int64
	RecordsBehind uint64
	// LastContact is when the primary last answered; zero before first
	// contact.
	LastContact time.Time
	// FramesApplied, Seeds, Resyncs, NetErrors count lifetime events:
	// records applied, snapshot (re-)seeds, corrupt-frame
	// resynchronizations, and failed fetch rounds.
	FramesApplied uint64
	Seeds         uint64
	Resyncs       uint64
	NetErrors     uint64
}

// FollowerConfig wires a Follower.
type FollowerConfig struct {
	// Primary is the primary's base URL, e.g. "http://127.0.0.1:7070".
	Primary string
	// Dir is the follower's data directory; the replication cursor
	// persists there as replica.json.
	Dir string
	// Journal is the follower's local WAL.
	Journal Journal
	// State is the replayed state shared with the daemon (it reads it at
	// promotion). Apply calls happen with no lock — the daemon must not
	// read it until the follower is stopped or drained.
	State *wal.State
	// Client is the HTTP client; nil means a 10s-timeout default.
	Client *http.Client
	// Wait is the stream long-poll bound sent to the primary; 0 = 1s.
	Wait time.Duration
	// Backoff bounds the retry delay after a failed round; 0 = 500ms.
	Backoff time.Duration
	// PersistEvery persists the cursor after this many applied frames
	// (always preceded by a local WAL sync, so the cursor never claims
	// bytes the local disk could lose); 0 = 256.
	PersistEvery int
	// OnApply, if set, observes every applied record (after State.Apply
	// and the local journal append). The failover e2e uses it to track
	// per-id accounting; twd uses it to keep standby-side counters.
	OnApply func(rec wal.Record)
	// ApplyLock, if set, is held around every State mutation (Apply and
	// the re-seed's ResetTo) so another goroutine — twd's /healthz — can
	// read the state consistently by holding the same lock.
	ApplyLock sync.Locker
}

// Follower replicates a primary's WAL into a local journal and state.
// Run drives it; Status is safe concurrently; Drain performs the final
// catch-up a promotion needs.
type Follower struct {
	cfg FollowerConfig

	mu     sync.Mutex
	status Status

	dec      wal.FrameDecoder
	seeded   bool
	sincePersist int // frames applied since the cursor was last persisted
}

// ErrFenced reports a primary whose term regressed below one this
// follower has already seen — a deposed primary that came back. The
// follower refuses its stream: applying a stale node's writes after a
// promotion would fork history.
var ErrFenced = errors.New("replica: primary term regressed (deposed primary?)")

// NewFollower creates a follower, loading any persisted cursor from
// cfg.Dir. The caller must have replayed the local journal into
// cfg.State already (twd's boot recovery does).
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Primary == "" {
		return nil, errors.New("replica: primary URL required")
	}
	if _, err := url.Parse(cfg.Primary); err != nil {
		return nil, fmt.Errorf("replica: bad primary URL: %w", err)
	}
	if cfg.Journal == nil || cfg.State == nil {
		return nil, errors.New("replica: journal and state required")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if cfg.Wait <= 0 {
		cfg.Wait = time.Second
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 500 * time.Millisecond
	}
	if cfg.PersistEvery <= 0 {
		cfg.PersistEvery = 256
	}
	f := &Follower{cfg: cfg}
	cur, err := loadCursor(cfg.Dir)
	if err != nil {
		return nil, err
	}
	if cur != nil {
		f.status.Cursor = *cur
		f.seeded = true
	}
	return f, nil
}

// Status returns the follower's current health snapshot.
func (f *Follower) Status() Status {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.status
}

// Run replicates until ctx is cancelled. Transient failures (network
// errors, 5xx, corrupt frames, epoch rotations) are retried forever —
// a standby's job is to wait out partitions. The only terminal errors
// are ErrFenced and a local journal failure, which make the standby's
// state untrustworthy.
func (f *Follower) Run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		progressed, err := f.step(ctx)
		if err != nil {
			if errors.Is(err, ErrFenced) || isJournalErr(err) {
				return err
			}
			f.mu.Lock()
			f.status.NetErrors++
			f.mu.Unlock()
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(f.cfg.Backoff):
			}
			continue
		}
		if !progressed {
			// Caught up and the long poll came back empty; loop again
			// immediately — the poll itself is the pacing.
			continue
		}
	}
}

// Drain performs the final catch-up a promotion needs: fetch until the
// cursor reaches the primary's durable boundary, or until the primary
// stops answering (the usual promotion trigger) or ctx expires —
// whichever comes first. It then syncs the local journal and persists
// the cursor, so the promoted state is exactly the durable local disk.
// Returns the drained status.
func (f *Follower) Drain(ctx context.Context) (Status, error) {
	deadlineGone := 0
	for {
		if ctx.Err() != nil {
			break
		}
		progressed, err := f.step(ctx)
		if err != nil {
			if isJournalErr(err) {
				return f.Status(), err
			}
			// Primary unreachable or fenced us — nothing more to drain.
			deadlineGone++
			if errors.Is(err, ErrFenced) || deadlineGone >= 2 {
				break
			}
			continue
		}
		deadlineGone = 0
		st := f.Status()
		if progressed {
			continue
		}
		if st.Cursor.Epoch == st.PrimaryPos.Epoch && st.Cursor.Offset >= st.PrimaryPos.DurableBytes {
			break // caught up to everything the primary ever made durable
		}
	}
	if err := f.cfg.Journal.Sync(); err != nil {
		return f.Status(), err
	}
	if err := f.persistCursor(); err != nil {
		return f.Status(), err
	}
	return f.Status(), nil
}

// step runs one replication round: seed if needed, then one stream
// fetch and apply. progressed reports whether any frame was applied.
func (f *Follower) step(ctx context.Context) (progressed bool, err error) {
	if !f.seeded {
		if err := f.seed(ctx); err != nil {
			return false, err
		}
	}
	f.mu.Lock()
	cur := f.status.Cursor
	f.mu.Unlock()

	// The cursor only advances by whole frames, but the primary may cut
	// a chunk mid-frame (MaxChunk); the partial tail sits in the decoder.
	// Fetch past it, or the refetch would duplicate those bytes in the
	// buffer and mis-frame the stream.
	fetchOff := cur.Offset + int64(f.dec.Buffered())
	u := fmt.Sprintf("%s/v1/replica/stream?epoch=%d&offset=%d&wait=%s",
		f.cfg.Primary, cur.Epoch, fetchOff, f.cfg.Wait)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return false, err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return false, err
	}
	body, rerr := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	resp.Body.Close()

	switch resp.StatusCode {
	case http.StatusOK:
		// fall through
	case http.StatusGone, http.StatusRequestedRangeNotSatisfiable:
		// Epoch compacted away, or our cursor is implausible: both mean
		// the segment we were reading no longer describes the primary.
		// Re-seed from the current snapshot.
		f.seeded = false
		f.dec.Reset()
		return false, nil
	default:
		return false, fmt.Errorf("replica: stream: %s", resp.Status)
	}
	if rerr != nil {
		return false, rerr
	}
	pos, term, err := parsePosHeaders(resp.Header)
	if err != nil {
		return false, err
	}
	if err := f.noteContact(pos, term); err != nil {
		return false, err
	}
	if len(body) == 0 {
		return false, nil
	}
	return f.apply(body)
}

// seed fetches the primary's snapshot and installs it as the local
// epoch seed, replacing all prior local state. Correct for the first
// connect (local state is empty) and for a mid-life re-seed after the
// primary compacted (the seed is the full live state at rotation;
// stale local records must not survive it, or cancelled timers would
// resurrect).
func (f *Follower) seed(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.cfg.Primary+"/v1/replica/snapshot", nil)
	if err != nil {
		return err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	body, rerr := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replica: snapshot: %s", resp.Status)
	}
	if rerr != nil {
		return rerr
	}
	pos, term, err := parsePosHeaders(resp.Header)
	if err != nil {
		return err
	}

	// Decode the seed fully before touching local state: a torn snapshot
	// response must not half-install.
	var recs []wal.Record
	var dec wal.FrameDecoder
	dec.Write(body)
	for {
		rec, n, err := dec.Next()
		if err != nil {
			return fmt.Errorf("replica: corrupt snapshot seed: %w", err)
		}
		if n == 0 {
			break
		}
		recs = append(recs, rec)
	}
	if dec.Buffered() != 0 {
		return fmt.Errorf("replica: snapshot seed ends mid-frame (%d trailing bytes)", dec.Buffered())
	}

	// Install: local journal rotates to a segment seeded by exactly
	// these records, and the shared state is rebuilt from them.
	if err := f.cfg.Journal.Snapshot(recs); err != nil {
		return &journalError{err}
	}
	if f.cfg.ApplyLock != nil {
		f.cfg.ApplyLock.Lock()
	}
	f.cfg.State.ResetTo(recs)
	if f.cfg.ApplyLock != nil {
		f.cfg.ApplyLock.Unlock()
	}

	f.mu.Lock()
	f.status.Cursor = Cursor{Epoch: pos.Epoch, Offset: 0, AppliedLSN: pos.SegBaseLSN, Term: f.status.Cursor.Term}
	f.status.Seeds++
	f.mu.Unlock()
	if err := f.noteContact(pos, term); err != nil {
		return err
	}
	f.seeded = true
	f.dec.Reset()
	if err := f.cfg.Journal.Sync(); err != nil {
		return &journalError{err}
	}
	return f.persistCursor()
}

// apply decodes body's frames, journaling and applying each. A corrupt
// frame discards the undecoded tail and leaves the cursor at the last
// good frame — the next step re-fetches from there.
func (f *Follower) apply(body []byte) (progressed bool, err error) {
	f.dec.Write(body)
	var lastLSN wal.LSN
	frames := 0
	for {
		rec, n, derr := f.dec.Next()
		if derr != nil {
			// Poisoned bytes in flight. Drop the buffered tail; the cursor
			// still names the last fully applied frame, so the re-fetch is
			// exact.
			f.dec.Reset()
			f.mu.Lock()
			f.status.Resyncs++
			f.mu.Unlock()
			err = fmt.Errorf("replica: corrupt frame in stream (resyncing): %w", derr)
			break
		}
		if n == 0 {
			break // partial frame; wait for the next chunk
		}
		lsn, jerr := f.cfg.Journal.Append(rec)
		if jerr != nil {
			return frames > 0, &journalError{jerr}
		}
		lastLSN = lsn
		if f.cfg.ApplyLock != nil {
			f.cfg.ApplyLock.Lock()
		}
		f.cfg.State.Apply(rec)
		if f.cfg.ApplyLock != nil {
			f.cfg.ApplyLock.Unlock()
		}
		frames++
		f.mu.Lock()
		f.status.Cursor.Offset += int64(n)
		f.status.Cursor.AppliedLSN++
		f.status.FramesApplied++
		f.refreshLagLocked()
		f.mu.Unlock()
		if f.cfg.OnApply != nil {
			f.cfg.OnApply(rec)
		}
	}
	if frames > 0 {
		f.sincePersist += frames
		if f.sincePersist >= f.cfg.PersistEvery {
			// Durability order: local frames first, then the cursor that
			// claims them. A crash between the two refetches an overlap,
			// which idempotent Apply absorbs; the reverse order could
			// skip records forever.
			if serr := f.cfg.Journal.Commit(lastLSN); serr != nil {
				return true, &journalError{serr}
			}
			if perr := f.persistCursor(); perr != nil {
				return true, perr
			}
			f.sincePersist = 0
		}
	}
	return frames > 0, err
}

// noteContact records the primary's position and term, enforcing term
// monotonicity.
func (f *Follower) noteContact(pos wal.FollowPos, term uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if term < f.status.Cursor.Term {
		return fmt.Errorf("%w: saw term %d, primary reports %d", ErrFenced, f.status.Cursor.Term, term)
	}
	f.status.Cursor.Term = term
	f.status.PrimaryPos = pos
	f.status.LastContact = time.Now()
	f.refreshLagLocked()
	return nil
}

func (f *Follower) refreshLagLocked() {
	st := &f.status
	if st.PrimaryPos.Epoch == st.Cursor.Epoch {
		st.BytesBehind = st.PrimaryPos.DurableBytes - st.Cursor.Offset
		if st.BytesBehind < 0 {
			st.BytesBehind = 0
		}
	} else {
		// Mid re-seed; bytes lag is undefined, report the whole segment.
		st.BytesBehind = st.PrimaryPos.DurableBytes
	}
	if st.PrimaryPos.DurableLSN > st.Cursor.AppliedLSN {
		st.RecordsBehind = st.PrimaryPos.DurableLSN - st.Cursor.AppliedLSN
	} else {
		st.RecordsBehind = 0
	}
}

// Cursor persistence: replica.json, atomically renamed. Loaded on
// restart so the follower resumes from its last durable position
// instead of re-seeding.
func cursorPath(dir string) string { return filepath.Join(dir, "replica.json") }

func (f *Follower) persistCursor() error {
	f.mu.Lock()
	cur := f.status.Cursor
	f.mu.Unlock()
	data, err := json.Marshal(cur)
	if err != nil {
		return err
	}
	tmp := cursorPath(f.cfg.Dir) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, cursorPath(f.cfg.Dir))
}

func loadCursor(dir string) (*Cursor, error) {
	data, err := os.ReadFile(cursorPath(dir))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var cur Cursor
	if err := json.Unmarshal(data, &cur); err != nil {
		// A torn cursor file is recoverable: forget it and re-seed.
		return nil, nil
	}
	return &cur, nil
}

// LoadTerm reads the last term a follower in dir observed (0 if none) —
// what a promotion bumps from.
func LoadTerm(dir string) uint64 {
	cur, err := loadCursor(dir)
	if err != nil || cur == nil {
		return 0
	}
	return cur.Term
}

// journalError marks local-WAL failures terminal: a standby that cannot
// journal is not a standby.
type journalError struct{ err error }

func (e *journalError) Error() string { return "replica: local journal: " + e.err.Error() }
func (e *journalError) Unwrap() error { return e.err }

func isJournalErr(err error) bool {
	var je *journalError
	return errors.As(err, &je)
}
