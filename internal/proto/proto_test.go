package proto

import (
	"testing"

	"timingwheels/internal/baseline"
	"timingwheels/internal/core"
	"timingwheels/internal/hashwheel"
	"timingwheels/internal/hier"
	"timingwheels/internal/hybrid"
	"timingwheels/internal/tree"
)

func baseConfig() Config {
	return Config{
		Connections:    20,
		PacketsPerConn: 50,
		Window:         8,
		OneWayDelay:    10,
		RTO:            48,
		Keepalive:      15, // shorter than the ~20-tick ack round trip, so probes fire

		LossOneIn: 11,
		Seed:      1987,
	}
}

func TestLosslessTransferHasNoRetransmits(t *testing.T) {
	cfg := baseConfig()
	cfg.LossOneIn = 0
	res, err := Run(hashwheel.NewScheme6(1024, nil), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != cfg.Connections*cfg.PacketsPerConn {
		t.Fatalf("delivered %d", res.Delivered)
	}
	if res.Retransmits != 0 || res.Expired != 0 {
		t.Fatalf("lossless run had %d retransmits (%d expiries)", res.Retransmits, res.Expired)
	}
	if res.TimerStops == 0 {
		t.Fatal("acks should stop RTO timers")
	}
	// Every data packet's RTO was stopped, never fired: the dominant
	// stopped-before-expiry pattern of the paper's introduction.
	if res.TimerStops < uint64(res.Sent) {
		t.Fatalf("stops %d < sends %d", res.TimerStops, res.Sent)
	}
}

func TestLossyTransferCompletes(t *testing.T) {
	res, err := Run(hashwheel.NewScheme6(1024, nil), baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := baseConfig().Connections * baseConfig().PacketsPerConn
	if res.Delivered != want {
		t.Fatalf("delivered %d, want %d", res.Delivered, want)
	}
	if res.Retransmits == 0 {
		t.Fatal("lossy run should retransmit")
	}
	if res.Sent <= want {
		t.Fatalf("sent %d <= delivered %d despite loss", res.Sent, want)
	}
	if res.Keepalives == 0 {
		t.Fatal("long run should fire keepalives")
	}
}

// TestTraceIdenticalAcrossSchemes is the application-level conformance
// check: the protocol's behaviour depends only on timer semantics, so
// every exact scheme must produce the identical trace.
func TestTraceIdenticalAcrossSchemes(t *testing.T) {
	cfg := baseConfig()
	facs := map[string]core.Facility{
		"scheme1":  baseline.NewScheme1(nil),
		"scheme2":  baseline.NewScheme2(baseline.SearchFromFront, nil),
		"scheme3":  tree.NewScheme3(tree.KindHeap, nil),
		"scheme3a": tree.NewScheme3(tree.KindAVL, nil),
		"scheme5":  hashwheel.NewScheme5(64, nil),
		"scheme6":  hashwheel.NewScheme6(64, nil),
		"scheme7":  hier.NewScheme7([]int{32, 32, 32}, hier.MigrateAlways, nil),
		"hybrid":   hybrid.New(64, nil),
	}
	// Core protocol trace: must be bit-identical across schemes. The
	// keepalive count is excluded — when a keepalive expiry and an
	// RTO-triggered send land on the same tick, whether the reset beats
	// the expiry depends on same-tick callback order, which the paper
	// explicitly leaves unspecified ("timer modules need not meet this
	// [FIFO] restriction").
	type coreTrace struct {
		Ticks                        core.Tick
		Sent, Retransmits, Delivered int
		Expired                      uint64
	}
	extract := func(r *Result) coreTrace {
		return coreTrace{r.Ticks, r.Sent, r.Retransmits, r.Delivered, r.Expired}
	}
	var want *Result
	for name, fac := range facs {
		res, err := Run(fac, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if want == nil {
			want = res
			continue
		}
		if extract(res) != extract(want) {
			t.Fatalf("%s trace diverged:\n got %+v\nwant %+v", name, *res, *want)
		}
		// Keepalive counts may differ by the number of same-tick races
		// (keepalive expiry vs RTO-triggered reset), but not wildly.
		lo, hi := want.Keepalives*2/3, want.Keepalives*3/2
		if res.Keepalives < lo || res.Keepalives > hi {
			t.Fatalf("%s keepalives %d outside [%d,%d]", name, res.Keepalives, lo, hi)
		}
	}
	if want.Delivered != cfg.Connections*cfg.PacketsPerConn {
		t.Fatalf("delivered %d", want.Delivered)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := map[string]func(*Config){
		"no conns":    func(c *Config) { c.Connections = 0 },
		"no packets":  func(c *Config) { c.PacketsPerConn = 0 },
		"zero window": func(c *Config) { c.Window = 0 },
		"zero delay":  func(c *Config) { c.OneWayDelay = 0 },
		"tight rto":   func(c *Config) { c.RTO = 15 },
		"all lost":    func(c *Config) { c.LossOneIn = 1 },
	}
	for name, mut := range cases {
		t.Run(name, func(t *testing.T) {
			cfg := baseConfig()
			mut(&cfg)
			if _, err := Run(hashwheel.NewScheme6(64, nil), cfg); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestMaxTicksAborts(t *testing.T) {
	cfg := baseConfig()
	cfg.LossOneIn = 2 // brutal loss
	cfg.MaxTicks = 200
	if _, err := Run(hashwheel.NewScheme6(64, nil), cfg); err == nil {
		t.Fatal("expected incomplete-transfer error")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(hashwheel.NewScheme6(256, nil), baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(hashwheel.NewScheme6(256, nil), baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("same seed diverged: %+v vs %+v", *a, *b)
	}
}

func TestFacilityDrainsClean(t *testing.T) {
	fac := hashwheel.NewScheme6(256, nil)
	if _, err := Run(fac, baseConfig()); err != nil {
		t.Fatal(err)
	}
	// After completion and keepalive teardown, only already-detached
	// state may remain; the facility must be drainable to empty.
	for i := 0; i < 2000 && fac.Len() > 0; i++ {
		fac.Tick()
	}
	if fac.Len() != 0 {
		t.Fatalf("facility holds %d timers after transfer", fac.Len())
	}
}
