// Package proto is a deterministic sliding-window reliable-transport
// simulator — the paper's motivating application ("consider a server
// with 200 connections and 3 timers per connection") — parameterized by
// the timer facility it runs on.
//
// The paper closes with a claim this package exists to test: "designers
// and implementors have assumed that protocols that use a large number
// of timers are expensive and perform poorly. This is an artifact of
// existing implementations ... Given that a large number of timers can
// be implemented efficiently ... we hope this will no longer be an issue
// in the design of protocols." Experiment E14 runs the same transfer
// over Scheme 2 and Scheme 6 and compares the timer module's share of
// the work as the connection count scales.
//
// The protocol is intentionally textbook: go-back-N-free selective
// retransmission with per-packet RTO timers (started on every send,
// stopped on almost every ack — the rarely-expires class), cumulative
// acks, and a per-connection keepalive (the always-expires class). The
// network applies a fixed one-way delay and deterministic pseudo-random
// loss. Everything is virtual-time and bit-reproducible, so two runs on
// different (exact) timer schemes must produce identical protocol
// traces — an application-level conformance check.
package proto

import (
	"fmt"
	"sort"

	"timingwheels/internal/core"
)

// Config describes one transfer workload.
type Config struct {
	// Connections is the number of concurrent connections.
	Connections int
	// PacketsPerConn is how many packets each connection must deliver.
	PacketsPerConn int
	// Window is the per-connection sending window (packets in flight).
	Window int
	// OneWayDelay is the network's one-way latency in ticks.
	OneWayDelay core.Tick
	// RTO is the retransmission timeout in ticks (should exceed 2x
	// OneWayDelay).
	RTO core.Tick
	// Keepalive is the per-connection keepalive period in ticks
	// (0 disables keepalives).
	Keepalive core.Tick
	// LossOneIn drops one transmission in this many on average
	// (0 or 1 disables loss... 0 disables; 1 would drop everything and
	// is rejected).
	LossOneIn int
	// Seed fixes the loss pattern.
	Seed uint64
	// MaxTicks aborts a run that fails to complete (default 10M).
	MaxTicks core.Tick
}

func (c *Config) validate() error {
	if c.Connections < 1 || c.PacketsPerConn < 1 {
		return fmt.Errorf("proto: need at least one connection and packet")
	}
	if c.Window < 1 {
		return fmt.Errorf("proto: window must be >= 1")
	}
	if c.OneWayDelay < 1 {
		return fmt.Errorf("proto: one-way delay must be >= 1 tick")
	}
	if c.RTO < 2*c.OneWayDelay+1 {
		return fmt.Errorf("proto: RTO %d must exceed the round trip %d", c.RTO, 2*c.OneWayDelay)
	}
	if c.LossOneIn == 1 {
		return fmt.Errorf("proto: LossOneIn=1 drops every packet")
	}
	if c.MaxTicks == 0 {
		c.MaxTicks = 10_000_000
	}
	return nil
}

// Result summarizes one run.
type Result struct {
	// Ticks is the virtual time at which the last connection completed.
	Ticks core.Tick
	// Sent counts data transmissions (including retransmissions).
	Sent int
	// Retransmits counts RTO-triggered retransmissions.
	Retransmits int
	// Delivered counts distinct packets delivered (Connections *
	// PacketsPerConn on success).
	Delivered int
	// Keepalives counts keepalive probes fired.
	Keepalives int
	// TimerStarts and TimerStops count timer-module operations.
	TimerStarts, TimerStops uint64
	// Expired counts RTO timers that actually fired.
	Expired uint64
}

// event is a packet crossing the network.
type event struct {
	conn int
	seq  int
	ack  bool
}

// conn is one connection's sender+receiver state.
type conn struct {
	id        int
	base      int // lowest unacked seq
	next      int // next seq to send
	total     int
	acked     []bool
	rto       map[int]core.Handle // seq -> pending RTO timer
	sendCount []int               // transmissions per seq (loss hashing)
	ackCount  map[int]int         // ack transmissions per cumulative seq
	keepalive core.Handle
	done      bool
}

// runner holds one run's full state.
type runner struct {
	cfg     Config
	fac     core.Facility
	conns   []*conn
	wire    map[core.Tick][]event
	res     Result
	pending int // packets not yet delivered across all connections
}

// Run executes the transfer over the given facility and reports the
// protocol trace. The facility must be fresh (time 0, no timers).
func Run(fac core.Facility, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := &runner{
		cfg:   cfg,
		fac:   fac,
		wire:  make(map[core.Tick][]event),
		conns: make([]*conn, cfg.Connections),
	}
	r.pending = cfg.Connections * cfg.PacketsPerConn
	for i := range r.conns {
		r.conns[i] = &conn{
			id:        i,
			total:     cfg.PacketsPerConn,
			acked:     make([]bool, cfg.PacketsPerConn),
			rto:       make(map[int]core.Handle),
			sendCount: make([]int, cfg.PacketsPerConn),
			ackCount:  make(map[int]int),
		}
	}

	// Open: every connection fills its window; the first send arms its
	// keepalive as a side effect (PacketsPerConn >= 1 guarantees one).
	for _, c := range r.conns {
		r.fill(c)
	}

	for r.pending > 0 {
		if r.fac.Now() >= cfg.MaxTicks {
			return nil, fmt.Errorf("proto: transfer incomplete after %d ticks", cfg.MaxTicks)
		}
		// Deliver packets due this tick in a canonical order (the order
		// of same-tick timer callbacks is legitimately scheme-dependent,
		// so anything they enqueued is sorted before processing), then
		// let timers fire.
		now := r.fac.Now() + 1 // deliveries land on the tick being entered
		evs := r.wire[now]
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].conn != evs[j].conn {
				return evs[i].conn < evs[j].conn
			}
			if evs[i].ack != evs[j].ack {
				return !evs[i].ack // data before acks
			}
			return evs[i].seq < evs[j].seq
		})
		for _, ev := range evs {
			r.deliver(ev)
		}
		delete(r.wire, now)
		r.fac.Tick()
	}
	// Tear down: stop keepalives and any RTOs still armed for acks that
	// were in flight when the last packet landed, so the facility drains
	// clean.
	for _, c := range r.conns {
		r.stopTimer(&c.keepalive)
		for seq, h := range c.rto {
			delete(c.rto, seq)
			r.stopHandle(h)
		}
	}
	r.res.Ticks = r.fac.Now()
	return &r.res, nil
}

// fill sends until the window is full.
func (r *runner) fill(c *conn) {
	for c.next < c.total && c.next < c.base+r.cfg.Window {
		r.send(c, c.next, false)
		c.next++
	}
}

// send transmits seq (retransmit marks accounting) and arms its RTO.
func (r *runner) send(c *conn, seq int, retransmit bool) {
	r.res.Sent++
	if retransmit {
		r.res.Retransmits++
	}
	// Any traffic postpones the keepalive.
	r.resetKeepalive(c)
	// Arm (or re-arm) the per-packet retransmission timer.
	if h, ok := c.rto[seq]; ok {
		r.stopHandle(h)
	}
	c.rto[seq] = r.startTimer(r.cfg.RTO, func(core.ID) {
		delete(c.rto, seq)
		r.res.Expired++
		// Retransmit anything not yet cumulatively acknowledged at the
		// sender — the receiver may have the packet, but with its ack
		// lost the sender cannot know, and a duplicate is the price of
		// recovery.
		if seq >= c.base {
			r.send(c, seq, true)
		}
	})
	// Put the data packet on the wire unless the network drops it. The
	// loss decision hashes (conn, seq, transmission#) so it is invariant
	// to the order in which same-tick timers fire.
	c.sendCount[seq]++
	if !r.lost(uint64(c.id), uint64(seq), uint64(c.sendCount[seq])) {
		at := r.fac.Now() + r.cfg.OneWayDelay
		r.wire[at] = append(r.wire[at], event{conn: c.id, seq: seq})
	}
}

// deliver processes a packet arriving at its destination.
func (r *runner) deliver(ev event) {
	c := r.conns[ev.conn]
	if ev.ack {
		r.onAck(c, ev.seq)
		return
	}
	// Receiver: record delivery once, always ack cumulatively. The
	// sender's RTO for this packet keeps running until the ack makes it
	// back (stopping it here would assume a lossless reverse path and
	// deadlock the transfer when an ack drops).
	if !c.acked[ev.seq] {
		c.acked[ev.seq] = true
		r.res.Delivered++
		r.pending--
	}
	// Cumulative ack: highest in-order seq delivered.
	hi := c.base
	for hi < c.total && c.acked[hi] {
		hi++
	}
	c.ackCount[hi]++
	if !r.lost(uint64(c.id)+1<<32, uint64(hi), uint64(c.ackCount[hi])) {
		at := r.fac.Now() + r.cfg.OneWayDelay
		r.wire[at] = append(r.wire[at], event{conn: c.id, seq: hi - 1, ack: true})
	}
}

// onAck advances the window on a cumulative ack for seqs <= seq.
func (r *runner) onAck(c *conn, seq int) {
	for c.base <= seq && c.base < c.total {
		if h, ok := c.rto[c.base]; ok {
			delete(c.rto, c.base)
			r.stopHandle(h)
		}
		c.base++
	}
	if c.base >= c.total {
		c.done = true
		return
	}
	r.fill(c)
}

// armKeepalive starts the per-connection keepalive cycle.
func (r *runner) armKeepalive(c *conn) {
	if r.cfg.Keepalive <= 0 {
		return
	}
	c.keepalive = r.startTimer(r.cfg.Keepalive, func(core.ID) {
		r.res.Keepalives++
		c.keepalive = nil
		if !c.done {
			r.armKeepalive(c) // probe and re-arm
		}
	})
}

// resetKeepalive restarts the keepalive on traffic.
func (r *runner) resetKeepalive(c *conn) {
	if r.cfg.Keepalive <= 0 {
		return
	}
	r.stopTimer(&c.keepalive)
	r.armKeepalive(c)
}

// lost applies the deterministic loss model: a splitmix-style hash of
// (seed, stream, seq, attempt) decides each transmission independently
// of the order events happen to be processed in.
func (r *runner) lost(stream, seq, attempt uint64) bool {
	if r.cfg.LossOneIn <= 1 {
		return false
	}
	x := r.cfg.Seed ^ stream*0x9e3779b97f4a7c15 ^ seq*0xbf58476d1ce4e5b9 ^ attempt*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x%uint64(r.cfg.LossOneIn) == 0
}

// startTimer wraps StartTimer with op accounting.
func (r *runner) startTimer(d core.Tick, cb core.Callback) core.Handle {
	h, err := r.fac.StartTimer(d, cb)
	if err != nil {
		panic(fmt.Sprintf("proto: StartTimer(%d): %v", d, err))
	}
	r.res.TimerStarts++
	return h
}

// stopHandle stops a timer, tolerating already-fired races.
func (r *runner) stopHandle(h core.Handle) {
	if h == nil {
		return
	}
	if err := r.fac.StopTimer(h); err == nil {
		r.res.TimerStops++
	}
}

// stopTimer stops and clears a handle slot.
func (r *runner) stopTimer(h *core.Handle) {
	if *h != nil {
		r.stopHandle(*h)
		*h = nil
	}
}
