package sim

import "testing"

func newCircuit(t *testing.T) (*Engine, *Circuit) {
	t.Helper()
	e := NewEngine(NewWheel(128, RotatePerTick, nil, nil))
	return e, NewCircuit(e)
}

func TestGateEval(t *testing.T) {
	cases := []struct {
		kind GateKind
		in   []bool
		want bool
	}{
		{GateAnd, []bool{true, true}, true},
		{GateAnd, []bool{true, false}, false},
		{GateOr, []bool{false, false}, false},
		{GateOr, []bool{true, false}, true},
		{GateXor, []bool{true, true}, false},
		{GateXor, []bool{true, false}, true},
		{GateNand, []bool{true, true}, false},
		{GateNor, []bool{false, false}, true},
		{GateNot, []bool{true}, false},
		{GateBuf, []bool{true}, true},
	}
	for _, c := range cases {
		if got := c.kind.eval(c.in); got != c.want {
			t.Errorf("%s%v=%v, want %v", c.kind, c.in, got, c.want)
		}
	}
}

func TestGateValidation(t *testing.T) {
	_, c := newCircuit(t)
	a, b, out := c.AddSignal("a"), c.AddSignal("b"), c.AddSignal("out")
	if err := c.AddGate(GateAnd, 0, out, a, b); err == nil {
		t.Fatal("zero delay should be rejected")
	}
	if err := c.AddGate(GateNot, 1, out, a, b); err == nil {
		t.Fatal("NOT with two inputs should be rejected")
	}
	if err := c.AddGate(GateAnd, 1, out, a); err == nil {
		t.Fatal("AND with one input should be rejected")
	}
	if err := c.AddGate(GateAnd, 1, out, a, b); err != nil {
		t.Fatalf("valid gate rejected: %v", err)
	}
}

func TestCombinationalAnd(t *testing.T) {
	e, c := newCircuit(t)
	a, b, out := c.AddSignal("a"), c.AddSignal("b"), c.AddSignal("out")
	if err := c.AddGate(GateAnd, 2, out, a, b); err != nil {
		t.Fatal(err)
	}
	if err := c.Drive(a, true, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Drive(b, true, 5); err != nil {
		t.Fatal(err)
	}
	c.Settle(100)
	if !c.Value(out) {
		t.Fatal("AND output should be high")
	}
	_ = e
}

// TestRingOscillator: a NOT gate feeding itself oscillates with period
// 2*delay — the classic logic-simulation smoke test.
func TestRingOscillator(t *testing.T) {
	e, c := newCircuit(t)
	s := c.AddSignal("ring")
	if err := c.AddGate(GateNot, 5, s, s); err != nil {
		t.Fatal(err)
	}
	var transitions []Time
	c.Watch(s, func(at Time, v bool) { transitions = append(transitions, at) })
	if err := c.Drive(s, true, 1); err != nil {
		t.Fatal(err)
	}
	e.Run(100)
	if len(transitions) < 10 {
		t.Fatalf("only %d transitions", len(transitions))
	}
	for i := 1; i < len(transitions); i++ {
		if d := transitions[i] - transitions[i-1]; d != 5 {
			t.Fatalf("transition gap %d at step %d, want 5 (period 10)", d, i)
		}
	}
}

// TestFullAdder checks the complete truth table of a gate-level full
// adder, settling the circuit between input changes.
func TestFullAdder(t *testing.T) {
	e, c := newCircuit(t)
	a, b, cin := c.AddSignal("a"), c.AddSignal("b"), c.AddSignal("cin")
	axb := c.AddSignal("axb")
	sum := c.AddSignal("sum")
	ab := c.AddSignal("ab")
	axbc := c.AddSignal("axbc")
	cout := c.AddSignal("cout")
	for _, g := range []struct {
		kind GateKind
		out  Signal
		in   []Signal
	}{
		{GateXor, axb, []Signal{a, b}},
		{GateXor, sum, []Signal{axb, cin}},
		{GateAnd, ab, []Signal{a, b}},
		{GateAnd, axbc, []Signal{axb, cin}},
		{GateOr, cout, []Signal{ab, axbc}},
	} {
		if err := c.AddGate(g.kind, 1, g.out, g.in...); err != nil {
			t.Fatal(err)
		}
	}
	set := func(s Signal, v bool) {
		if c.Value(s) != v {
			if err := c.Drive(s, v, e.Now()+1); err != nil {
				t.Fatal(err)
			}
		}
	}
	for bits := 0; bits < 8; bits++ {
		av, bv, cv := bits&1 != 0, bits&2 != 0, bits&4 != 0
		set(a, av)
		set(b, bv)
		set(cin, cv)
		c.Settle(e.Now() + 50)
		n := 0
		for _, v := range []bool{av, bv, cv} {
			if v {
				n++
			}
		}
		if c.Value(sum) != (n%2 == 1) {
			t.Fatalf("bits=%03b sum=%v, want %v", bits, c.Value(sum), n%2 == 1)
		}
		if c.Value(cout) != (n >= 2) {
			t.Fatalf("bits=%03b cout=%v, want %v", bits, c.Value(cout), n >= 2)
		}
	}
	if c.Transitions == 0 {
		t.Fatal("no transitions recorded")
	}
}

func TestSignalNames(t *testing.T) {
	_, c := newCircuit(t)
	s := c.AddSignal("clk")
	if c.Name(s) != "clk" {
		t.Fatalf("Name=%q", c.Name(s))
	}
}
