package sim

import "fmt"

// This file provides prebuilt circuits for exercising the time-flow
// mechanisms: the standard logic-simulation smoke tests (ring
// oscillator, ripple-carry adder, clocked shift register). cmd/twsim
// drives them across all four mechanisms and checks waveform equality.

// RingOscillator wires a single inverter feeding itself: the canonical
// self-sustaining workload, oscillating with period 2*delay.
type RingOscillator struct {
	// Out is the oscillating signal.
	Out Signal
}

// BuildRingOscillator adds a ring oscillator to c and kicks it off at
// time 1.
func BuildRingOscillator(c *Circuit, delay Time) (*RingOscillator, error) {
	s := c.AddSignal("ring")
	if err := c.AddGate(GateNot, delay, s, s); err != nil {
		return nil, err
	}
	if err := c.Drive(s, true, 1); err != nil {
		return nil, err
	}
	return &RingOscillator{Out: s}, nil
}

// RippleAdder is an n-bit ripple-carry adder.
type RippleAdder struct {
	A, B, Sum []Signal
	CarryIn   Signal
	CarryOut  Signal
	circuit   *Circuit
}

// BuildRippleAdder wires an n-bit ripple-carry adder with unit gate
// delays (2 XOR + 2 AND + 1 OR per bit).
func BuildRippleAdder(c *Circuit, bits int) (*RippleAdder, error) {
	if bits < 1 {
		return nil, fmt.Errorf("sim: adder needs at least one bit")
	}
	ra := &RippleAdder{circuit: c}
	carry := c.AddSignal("c0")
	ra.CarryIn = carry
	for i := 0; i < bits; i++ {
		a := c.AddSignal(fmt.Sprintf("a%d", i))
		b := c.AddSignal(fmt.Sprintf("b%d", i))
		sum := c.AddSignal(fmt.Sprintf("s%d", i))
		axb := c.AddSignal(fmt.Sprintf("axb%d", i))
		ab := c.AddSignal(fmt.Sprintf("ab%d", i))
		axbc := c.AddSignal(fmt.Sprintf("axbc%d", i))
		cout := c.AddSignal(fmt.Sprintf("c%d", i+1))
		wires := []struct {
			kind GateKind
			out  Signal
			in   []Signal
		}{
			{GateXor, axb, []Signal{a, b}},
			{GateXor, sum, []Signal{axb, carry}},
			{GateAnd, ab, []Signal{a, b}},
			{GateAnd, axbc, []Signal{axb, carry}},
			{GateOr, cout, []Signal{ab, axbc}},
		}
		for _, w := range wires {
			if err := c.AddGate(w.kind, 1, w.out, w.in...); err != nil {
				return nil, err
			}
		}
		ra.A = append(ra.A, a)
		ra.B = append(ra.B, b)
		ra.Sum = append(ra.Sum, sum)
		carry = cout
	}
	ra.CarryOut = carry
	return ra, nil
}

// SetInputs drives the operand bits of the adder at time t.
func (ra *RippleAdder) SetInputs(a, b uint64, t Time) error {
	for i := range ra.A {
		av := a&(1<<uint(i)) != 0
		bv := b&(1<<uint(i)) != 0
		if ra.circuit.Value(ra.A[i]) != av {
			if err := ra.circuit.Drive(ra.A[i], av, t); err != nil {
				return err
			}
		}
		if ra.circuit.Value(ra.B[i]) != bv {
			if err := ra.circuit.Drive(ra.B[i], bv, t); err != nil {
				return err
			}
		}
	}
	return nil
}

// Result reads the settled sum (including carry-out as the top bit).
func (ra *RippleAdder) Result() uint64 {
	var v uint64
	for i, s := range ra.Sum {
		if ra.circuit.Value(s) {
			v |= 1 << uint(i)
		}
	}
	if ra.circuit.Value(ra.CarryOut) {
		v |= 1 << uint(len(ra.Sum))
	}
	return v
}

// ShiftChain is a clocked buffer chain: a token injected at the head
// marches one stage per clock period, generating steady event traffic
// for throughput comparisons.
type ShiftChain struct {
	Clock  Signal
	Stages []Signal
}

// BuildShiftChain wires a ring-oscillator clock driving a chain of
// clock-gated stages.
func BuildShiftChain(c *Circuit, stages int, clockDelay Time) (*ShiftChain, error) {
	if stages < 1 {
		return nil, fmt.Errorf("sim: chain needs at least one stage")
	}
	sc := &ShiftChain{}
	sc.Clock = c.AddSignal("clk")
	if err := c.AddGate(GateNot, clockDelay, sc.Clock, sc.Clock); err != nil {
		return nil, err
	}
	prev := sc.Clock
	for i := 0; i < stages; i++ {
		st := c.AddSignal(fmt.Sprintf("st%d", i))
		gated := c.AddSignal(fmt.Sprintf("g%d", i))
		if err := c.AddGate(GateAnd, 1, gated, prev, sc.Clock); err != nil {
			return nil, err
		}
		if err := c.AddGate(GateOr, 2, st, gated, gated); err != nil {
			return nil, err
		}
		sc.Stages = append(sc.Stages, st)
		prev = st
	}
	if err := c.Drive(sc.Clock, true, 1); err != nil {
		return nil, err
	}
	return sc, nil
}
