package sim

import (
	"testing"

	"timingwheels/internal/dist"
)

func mechanisms(stats *Stats) map[string]Mechanism {
	return map[string]Mechanism{
		"eventlist":        NewEventList(nil),
		"wheel-per-cycle":  NewWheel(64, RotatePerCycle, stats, nil),
		"wheel-half-cycle": NewWheel(64, RotateHalfCycle, stats, nil),
		"wheel-per-tick":   NewWheel(64, RotatePerTick, stats, nil),
	}
}

func TestExecutionOrderMatchesAcrossMechanisms(t *testing.T) {
	// All four mechanisms must execute the same schedule in the same
	// (time, FIFO) order.
	type rec struct {
		at Time
		id int
	}
	runOne := func(m Mechanism) []rec {
		e := NewEngine(m)
		var got []rec
		rng := dist.NewRNG(61)
		id := 0
		var schedule func(depth int)
		schedule = func(depth int) {
			at := e.Now() + Time(rng.Intn(200))
			myID := id
			id++
			if _, err := e.At(at, func() {
				got = append(got, rec{at: e.Now(), id: myID})
				if depth < 3 {
					schedule(depth + 1)
					schedule(depth + 1)
				}
			}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 8; i++ {
			schedule(0)
		}
		e.Run(1 << 30)
		return got
	}
	var want []rec
	for name, m := range mechanisms(&Stats{}) {
		got := runOne(m)
		if want == nil {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("%s executed %d events, want %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s diverged at event %d: %+v vs %+v", name, i, got[i], want[i])
			}
		}
	}
	if len(want) == 0 {
		t.Fatal("no events executed")
	}
}

func TestEventListTimeJumps(t *testing.T) {
	e := NewEngine(NewEventList(nil))
	fired := false
	if _, err := e.At(1_000_000, func() { fired = true }); err != nil {
		t.Fatal(err)
	}
	e.Run(2_000_000)
	if !fired || e.Now() != 1_000_000 {
		t.Fatalf("fired=%v now=%d", fired, e.Now())
	}
}

func TestSchedulePastRejected(t *testing.T) {
	e := NewEngine(NewEventList(nil))
	if _, err := e.At(5, func() {}); err != nil {
		t.Fatal(err)
	}
	e.Run(100)
	if _, err := e.At(2, func() {}); err == nil {
		t.Fatal("scheduling in the past should fail")
	}
	if _, err := e.After(-1, func() {}); err == nil {
		t.Fatal("negative delay should fail")
	}
}

func TestCancelMarkAndDiscard(t *testing.T) {
	// Simulation-style cancellation: the notice stays in the structure
	// (Pending does not drop) and is discarded at its scheduled time.
	for name, m := range mechanisms(&Stats{}) {
		e := NewEngine(m)
		ran := false
		ev, err := e.After(10, func() { ran = true })
		if err != nil {
			t.Fatal(err)
		}
		e.Cancel(ev)
		if e.Pending() != 1 {
			t.Fatalf("%s: canceled notice should remain pending (memory growth claim)", name)
		}
		e.Cancel(ev) // idempotent
		e.Run(100)
		if ran {
			t.Fatalf("%s: canceled event ran", name)
		}
		if e.Stats.Canceled != 1 || e.Stats.Discarded != 1 {
			t.Fatalf("%s: canceled=%d discarded=%d", name, e.Stats.Canceled, e.Stats.Discarded)
		}
	}
}

func TestRunLimit(t *testing.T) {
	for name, m := range mechanisms(&Stats{}) {
		e := NewEngine(m)
		order := []Time{}
		for _, at := range []Time{5, 15, 25} {
			if _, err := e.At(at, func() { order = append(order, e.Now()) }); err != nil {
				t.Fatal(err)
			}
		}
		if n := e.Run(20); n != 2 {
			t.Fatalf("%s: Run(20) executed %d, want 2", name, n)
		}
		if n := e.Run(1000); n != 1 {
			t.Fatalf("%s: second Run executed %d, want 1", name, n)
		}
		if len(order) != 3 || order[2] != 25 {
			t.Fatalf("%s: order=%v", name, order)
		}
	}
}

// TestOverflowBehaviourByPolicy reproduces E9's core contrast: with
// events scheduled a fixed horizon ahead, the per-cycle wheel pushes a
// large share of insertions onto the overflow list, the half-cycle wheel
// fewer, and the per-tick wheel none at all (horizon < wheel size).
func TestOverflowBehaviourByPolicy(t *testing.T) {
	overflowFraction := func(policy RotatePolicy) float64 {
		stats := &Stats{}
		w := NewWheel(64, policy, stats, nil)
		e := NewEngine(w)
		rng := dist.NewRNG(67)
		// Self-perpetuating event population with horizon < 64.
		var reschedule func()
		reschedule = func() {
			if e.Now() < 20000 {
				if _, err := e.After(Time(1+rng.Intn(60)), reschedule); err != nil {
					t.Fatal(err)
				}
			}
		}
		for i := 0; i < 16; i++ {
			reschedule()
		}
		e.Run(25000)
		return float64(stats.OverflowInserts) / float64(e.Stats.Scheduled)
	}
	perCycle := overflowFraction(RotatePerCycle)
	halfCycle := overflowFraction(RotateHalfCycle)
	perTick := overflowFraction(RotatePerTick)
	if perTick != 0 {
		t.Fatalf("per-tick rotation should never overflow in range, got %.3f", perTick)
	}
	if halfCycle >= perCycle {
		t.Fatalf("half-cycle overflow %.3f should be below per-cycle %.3f", halfCycle, perCycle)
	}
	if perCycle < 0.2 {
		t.Fatalf("per-cycle overflow fraction %.3f unexpectedly small", perCycle)
	}
}

func TestWheelBeyondRangeStillCorrect(t *testing.T) {
	// Events beyond the wheel range land on the overflow list but must
	// still execute at the right time, for every policy.
	for _, policy := range []RotatePolicy{RotatePerCycle, RotateHalfCycle, RotatePerTick} {
		stats := &Stats{}
		w := NewWheel(16, policy, stats, nil)
		e := NewEngine(w)
		var at Time = -1
		if _, err := e.At(1000, func() { at = e.Now() }); err != nil {
			t.Fatal(err)
		}
		e.Run(2000)
		if at != 1000 {
			t.Fatalf("%s: executed at %d", policy, at)
		}
		if stats.OverflowInserts != 1 {
			t.Fatalf("%s: overflow inserts %d, want 1", policy, stats.OverflowInserts)
		}
	}
}

func TestWheelInvalidSizePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero":      func() { NewWheel(0, RotatePerCycle, nil, nil) },
		"half-of-1": func() { NewWheel(1, RotateHalfCycle, nil, nil) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestPolicyStrings(t *testing.T) {
	if RotatePerCycle.String() != "per-cycle" ||
		RotateHalfCycle.String() != "half-cycle" ||
		RotatePerTick.String() != "per-tick" {
		t.Fatal("policy names")
	}
	if NewWheel(8, RotatePerTick, nil, nil).Name() != "wheel-per-tick" {
		t.Fatal("wheel name")
	}
	if NewEventList(nil).Name() != "eventlist" {
		t.Fatal("eventlist name")
	}
}

func TestPeakPendingTracksCanceledNotices(t *testing.T) {
	// The memory-growth claim: heavy cancellation under mark-and-discard
	// keeps notices alive, inflating peak storage.
	e := NewEngine(NewEventList(nil))
	for i := 0; i < 1000; i++ {
		ev, err := e.After(Time(500+i), func() {})
		if err != nil {
			t.Fatal(err)
		}
		e.Cancel(ev)
	}
	if e.Pending() != 1000 {
		t.Fatalf("Pending=%d, want 1000 canceled-but-stored notices", e.Pending())
	}
	if e.Stats.PeakPending != 1000 {
		t.Fatalf("PeakPending=%d", e.Stats.PeakPending)
	}
	e.Run(1 << 20)
	if e.Pending() != 0 {
		t.Fatalf("Pending=%d after drain", e.Pending())
	}
}
