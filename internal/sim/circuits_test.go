package sim

import "testing"

func TestBuildRingOscillatorPeriod(t *testing.T) {
	e := NewEngine(NewEventList(nil))
	c := NewCircuit(e)
	ro, err := BuildRingOscillator(c, 7)
	if err != nil {
		t.Fatal(err)
	}
	var transitions []Time
	c.Watch(ro.Out, func(at Time, v bool) { transitions = append(transitions, at) })
	e.Run(200)
	if len(transitions) < 10 {
		t.Fatalf("only %d transitions", len(transitions))
	}
	for i := 1; i < len(transitions); i++ {
		if d := transitions[i] - transitions[i-1]; d != 7 {
			t.Fatalf("gap %d at %d, want 7", d, i)
		}
	}
}

// TestRippleAdderExhaustive checks every input pair of a 3-bit adder
// against integer arithmetic, across two different mechanisms.
func TestRippleAdderExhaustive(t *testing.T) {
	for _, mkMech := range []func() Mechanism{
		func() Mechanism { return NewEventList(nil) },
		func() Mechanism { return NewWheel(32, RotatePerTick, &Stats{}, nil) },
	} {
		e := NewEngine(mkMech())
		c := NewCircuit(e)
		ra, err := BuildRippleAdder(c, 3)
		if err != nil {
			t.Fatal(err)
		}
		for a := uint64(0); a < 8; a++ {
			for b := uint64(0); b < 8; b++ {
				if err := ra.SetInputs(a, b, e.Now()+1); err != nil {
					t.Fatal(err)
				}
				c.Settle(e.Now() + 40)
				if got := ra.Result(); got != a+b {
					t.Fatalf("%s: %d+%d=%d", e.Mechanism().Name(), a, b, got)
				}
			}
		}
	}
}

func TestRippleAdderValidation(t *testing.T) {
	e := NewEngine(NewEventList(nil))
	c := NewCircuit(e)
	if _, err := BuildRippleAdder(c, 0); err == nil {
		t.Fatal("zero-bit adder should fail")
	}
}

func TestShiftChainPropagates(t *testing.T) {
	e := NewEngine(NewEventList(nil))
	c := NewCircuit(e)
	sc, err := BuildShiftChain(c, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(400)
	if len(sc.Stages) != 4 {
		t.Fatalf("stage count %d", len(sc.Stages))
	}
	// The clock's high phases gate a token down the chain: by t=400 the
	// circuit has produced sustained activity.
	if c.Transitions < 20 {
		t.Fatalf("only %d transitions; chain not propagating", c.Transitions)
	}
}

func TestShiftChainValidation(t *testing.T) {
	e := NewEngine(NewEventList(nil))
	c := NewCircuit(e)
	if _, err := BuildShiftChain(c, 0, 5); err == nil {
		t.Fatal("zero-stage chain should fail")
	}
}
