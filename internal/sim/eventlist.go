package sim

import (
	"timingwheels/internal/metrics"
	"timingwheels/internal/pq"
)

// EventList is the priority-queue time-flow mechanism: the earliest event
// notice is retrieved and the clock jumps directly to its time, as in
// GPSS and SIMULA (section 4.2, method 1).
type EventList struct {
	q   *pq.Heap[*Event]
	now Time
}

// NewEventList returns an empty event-list mechanism charging comparison
// costs to cost (may be nil).
func NewEventList(cost *metrics.Cost) *EventList {
	return &EventList{q: pq.NewHeap[*Event](cost)}
}

// Name returns "eventlist".
func (l *EventList) Name() string { return "eventlist" }

// Now reports the current simulation time.
func (l *EventList) Now() Time { return l.now }

// Schedule inserts the event notice into the priority queue.
func (l *EventList) Schedule(ev *Event) {
	ev.handle = l.q.Insert(ev.At, ev)
}

// Next pops the earliest event and jumps the clock to its time.
func (l *EventList) Next() (*Event, bool) {
	_, ev, ok := l.q.PopMin()
	if !ok {
		return nil, false
	}
	if ev.At > l.now {
		l.now = ev.At
	}
	return ev, true
}

// Pending reports the number of stored notices.
func (l *EventList) Pending() int { return l.q.Len() }

var _ Mechanism = (*EventList)(nil)
