package sim

import (
	"fmt"

	"timingwheels/internal/ilist"
	"timingwheels/internal/metrics"
)

// RotatePolicy selects when the logic-simulation wheel rotates its window
// over the overflow list (section 4.2, method 2).
type RotatePolicy int

// Rotation policies for the simulation wheel.
const (
	// RotatePerCycle rotates the window a full array length at a time,
	// as in TEGAS-2: events are inserted into the overflow list whenever
	// they fall beyond the current cycle.
	RotatePerCycle RotatePolicy = iota
	// RotateHalfCycle rotates the window half an array length at a time,
	// as in DECSIM, which "reduces (but does not completely avoid)" the
	// overflow effect.
	RotateHalfCycle
	// RotatePerTick slides the window every tick — the Scheme 4
	// extension: a timer/event within the array's range of the current
	// time always has a slot, so the overflow list is used only for
	// events beyond the full array range.
	RotatePerTick
)

// String names the policy.
func (p RotatePolicy) String() string {
	switch p {
	case RotateHalfCycle:
		return "half-cycle"
	case RotatePerTick:
		return "per-tick"
	default:
		return "per-cycle"
	}
}

// Wheel is the timing-wheel time-flow mechanism of logic simulators: an
// array of event lists indexed by time modulo the array size, with a
// single overflow list for events beyond the current window.
type Wheel struct {
	slots    []ilist.List[*Event]
	overflow ilist.List[*Event]
	policy   RotatePolicy
	now      Time
	// windowEnd is the first time that does NOT have a slot; events at or
	// beyond it go to the overflow list. Slot validity invariant: every
	// event in slots has now <= At < windowEnd.
	windowEnd Time
	pending   int
	stats     *Stats
	cost      *metrics.Cost
}

// NewWheel returns a simulation wheel with the given array size and
// rotation policy, reporting work counters into stats (which may be the
// engine's Stats) and costs into cost. Size must be at least 2 for
// half-cycle rotation, else at least 1.
func NewWheel(size int, policy RotatePolicy, stats *Stats, cost *metrics.Cost) *Wheel {
	if size < 1 || (policy == RotateHalfCycle && size < 2) {
		panic(fmt.Sprintf("sim: invalid wheel size %d for policy %s", size, policy))
	}
	w := &Wheel{
		slots:     make([]ilist.List[*Event], size),
		policy:    policy,
		windowEnd: Time(size),
		stats:     stats,
		cost:      cost,
	}
	if stats == nil {
		w.stats = &Stats{}
	}
	for i := range w.slots {
		w.slots[i].Init(cost)
	}
	w.overflow.Init(cost)
	return w
}

// Name returns "wheel-<policy>".
func (w *Wheel) Name() string { return "wheel-" + w.policy.String() }

// Now reports the current simulation time.
func (w *Wheel) Now() Time { return w.now }

// Pending reports the number of stored notices (slots + overflow).
func (w *Wheel) Pending() int { return w.pending }

// OverflowLen reports the current overflow-list length.
func (w *Wheel) OverflowLen() int { return w.overflow.Len() }

// Schedule inserts the event into its slot if its time falls within the
// current window, otherwise onto the overflow list.
func (w *Wheel) Schedule(ev *Event) {
	w.pending++
	if w.policy == RotatePerTick {
		// Scheme 4 behaviour: the window always covers [now, now+size).
		if ev.At < w.now+Time(len(w.slots)) {
			w.slots[w.slotIndex(ev.At)].PushBack(&ev.node)
			return
		}
		w.stats.OverflowInserts++
		w.overflow.PushBack(&ev.node)
		return
	}
	if ev.At < w.windowEnd {
		w.slots[w.slotIndex(ev.At)].PushBack(&ev.node)
		return
	}
	w.stats.OverflowInserts++
	w.overflow.PushBack(&ev.node)
}

func (w *Wheel) slotIndex(t Time) int {
	i := int(t % Time(len(w.slots)))
	if i < 0 {
		i += len(w.slots)
	}
	return i
}

// Next steps the clock through slots until it finds an event, rotating
// the window (and rescanning the overflow list) at cycle boundaries.
// Events in the same slot pop in FIFO order, the simulation-language
// convention the paper notes.
func (w *Wheel) Next() (*Event, bool) {
	if w.pending == 0 {
		return nil, false
	}
	for {
		// Current slot first: multiple events can share a time.
		slot := &w.slots[w.slotIndex(w.now)]
		if n := slot.Front(); n != nil && n.Value.At == w.now {
			slot.Remove(n)
			w.pending--
			return n.Value, true
		}
		w.advanceOneTick()
	}
}

// advanceOneTick increments the clock and performs any rotation due.
func (w *Wheel) advanceOneTick() {
	w.cost.Read(1)
	w.stats.EmptySteps++
	w.now++
	switch w.policy {
	case RotatePerTick:
		// The window slides every tick: exactly one new time becomes
		// representable; claim its events from the overflow list.
		w.claimFromOverflow(w.now + Time(len(w.slots)))
	case RotateHalfCycle:
		half := Time(len(w.slots) / 2)
		if w.now >= w.windowEnd-Time(len(w.slots))+half {
			w.rotateTo(w.windowEnd + half)
		}
	default: // RotatePerCycle
		if w.now >= w.windowEnd {
			w.rotateTo(w.windowEnd + Time(len(w.slots)))
		}
	}
}

// rotateTo extends the window to end at newEnd and moves newly
// representable events from the overflow list into slots — "the overflow
// list is checked; any elements due to occur in the current cycle are
// removed ... and inserted into the array of lists".
func (w *Wheel) rotateTo(newEnd Time) {
	w.windowEnd = newEnd
	for n := w.overflow.Front(); n != nil; {
		next := n.Next()
		w.stats.OverflowScanned++
		w.cost.Read(1)
		w.cost.Compare(1)
		if n.Value.At < w.windowEnd {
			w.overflow.Remove(n)
			w.slots[w.slotIndex(n.Value.At)].PushBack(n)
		}
		n = next
	}
}

// claimFromOverflow moves overflow events due before limit into slots
// (per-tick policy). With per-tick rotation most events never touch the
// overflow list, so this scan is short.
func (w *Wheel) claimFromOverflow(limit Time) {
	for n := w.overflow.Front(); n != nil; {
		next := n.Next()
		w.stats.OverflowScanned++
		w.cost.Read(1)
		w.cost.Compare(1)
		if n.Value.At < limit {
			w.overflow.Remove(n)
			w.slots[w.slotIndex(n.Value.At)].PushBack(n)
		}
		n = next
	}
}

var _ Mechanism = (*Wheel)(nil)
