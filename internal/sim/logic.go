package sim

import "fmt"

// GateKind enumerates the logic functions of the gate-level simulator.
type GateKind int

// Gate kinds.
const (
	GateAnd GateKind = iota
	GateOr
	GateNot
	GateXor
	GateNand
	GateNor
	GateBuf
)

// String names the gate kind.
func (k GateKind) String() string {
	switch k {
	case GateAnd:
		return "and"
	case GateOr:
		return "or"
	case GateNot:
		return "not"
	case GateXor:
		return "xor"
	case GateNand:
		return "nand"
	case GateNor:
		return "nor"
	case GateBuf:
		return "buf"
	default:
		return fmt.Sprintf("gate(%d)", int(k))
	}
}

// eval computes the gate function over the input values.
func (k GateKind) eval(in []bool) bool {
	switch k {
	case GateAnd, GateNand:
		v := true
		for _, b := range in {
			v = v && b
		}
		if k == GateNand {
			return !v
		}
		return v
	case GateOr, GateNor:
		v := false
		for _, b := range in {
			v = v || b
		}
		if k == GateNor {
			return !v
		}
		return v
	case GateXor:
		v := false
		for _, b := range in {
			v = v != b
		}
		return v
	case GateNot:
		return !in[0]
	default: // GateBuf
		return in[0]
	}
}

// Signal identifies one wire in a circuit.
type Signal int

type gate struct {
	kind   GateKind
	delay  Time
	out    Signal
	inputs []Signal
}

// Circuit is an event-driven gate-level logic simulator built on the
// engine — the TEGAS/DECSIM use case of section 4.2 ("time-sequenced
// logical simulation based on circuit delay", Ulrich [13]). Gate output
// transitions are scheduled as events after the gate's propagation
// delay; selective tracing evaluates only the fanout of signals that
// actually changed.
type Circuit struct {
	engine *Engine
	values []bool
	names  []string
	gates  []gate
	fanout map[Signal][]int // signal -> gate indices it feeds
	// Transitions counts committed signal changes; Glitches counts
	// scheduled transitions that were no-ops by execution time.
	Transitions uint64
	Glitches    uint64
	watchers    map[Signal][]func(Time, bool)
}

// NewCircuit returns an empty circuit simulated on the given engine.
func NewCircuit(e *Engine) *Circuit {
	return &Circuit{
		engine:   e,
		fanout:   make(map[Signal][]int),
		watchers: make(map[Signal][]func(Time, bool)),
	}
}

// AddSignal creates a named wire initialized to false.
func (c *Circuit) AddSignal(name string) Signal {
	c.values = append(c.values, false)
	c.names = append(c.names, name)
	return Signal(len(c.values) - 1)
}

// AddGate wires a gate of the given kind and propagation delay from the
// inputs to out. Delay must be positive (zero-delay loops would not
// advance time).
func (c *Circuit) AddGate(kind GateKind, delay Time, out Signal, inputs ...Signal) error {
	if delay < 1 {
		return fmt.Errorf("sim: gate delay must be >= 1, got %d", delay)
	}
	if kind == GateNot || kind == GateBuf {
		if len(inputs) != 1 {
			return fmt.Errorf("sim: %s takes exactly one input", kind)
		}
	} else if len(inputs) < 2 {
		return fmt.Errorf("sim: %s takes at least two inputs", kind)
	}
	g := gate{kind: kind, delay: delay, out: out, inputs: inputs}
	idx := len(c.gates)
	c.gates = append(c.gates, g)
	for _, in := range inputs {
		c.fanout[in] = append(c.fanout[in], idx)
	}
	return nil
}

// Value reports the current value of a signal.
func (c *Circuit) Value(s Signal) bool { return c.values[s] }

// Name reports the signal's name.
func (c *Circuit) Name(s Signal) string { return c.names[s] }

// Watch registers fn to run whenever s commits a transition.
func (c *Circuit) Watch(s Signal, fn func(at Time, v bool)) {
	c.watchers[s] = append(c.watchers[s], fn)
}

// Drive schedules an external stimulus: signal s takes value v at time t.
func (c *Circuit) Drive(s Signal, v bool, t Time) error {
	_, err := c.engine.At(t, func() { c.commit(s, v) })
	return err
}

// commit applies a signal change and propagates through fanout gates.
func (c *Circuit) commit(s Signal, v bool) {
	if c.values[s] == v {
		c.Glitches++
		return
	}
	c.values[s] = v
	c.Transitions++
	for _, fn := range c.watchers[s] {
		fn(c.engine.Now(), v)
	}
	// Selective tracing: re-evaluate only gates fed by s.
	for _, gi := range c.fanout[s] {
		g := &c.gates[gi]
		in := make([]bool, len(g.inputs))
		for i, is := range g.inputs {
			in[i] = c.values[is]
		}
		newOut := g.kind.eval(in)
		out := g.out
		// Transport-delay model: schedule the computed value; if the
		// output already holds it by then, commit records a glitch.
		if _, err := c.engine.After(g.delay, func() { c.commit(out, newOut) }); err != nil {
			panic(err) // delays are validated positive; unreachable
		}
	}
}

// Settle runs the simulation until limit and reports the number of
// events executed.
func (c *Circuit) Settle(limit Time) int { return c.engine.Run(limit) }
