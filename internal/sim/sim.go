// Package sim is the discrete-event-simulation substrate of section 4.2
// of the paper. It provides the two classical time-flow mechanisms the
// paper relates to timer algorithms:
//
//   - EventList: the earliest event is retrieved from a priority queue
//     and the clock jumps to its time (GPSS / SIMULA style).
//   - Wheel: event scheduling at clock-interval multiples, using the
//     timing-wheel of logic simulators (TEGAS / DECSIM style): an array
//     of lists plus a single overflow list for events beyond the current
//     cycle, rotated once per cycle — or half-way through the array, the
//     DECSIM refinement that reduces (but does not avoid) overflow
//     insertions.
//
// Experiment E9 uses this package to reproduce the paper's motivation
// for Scheme 4: "as time increases within a cycle ... it becomes more
// likely that event records will be inserted in the overflow list",
// which per-tick rotation eliminates entirely.
//
// The engine also implements the mark-and-discard cancellation the paper
// attributes to simulation languages ("it is sufficient to mark the
// notice as Canceled and wait"), whose unbounded memory growth under
// timer-module cancellation rates the harness measures.
package sim

import (
	"fmt"

	"timingwheels/internal/ilist"
	"timingwheels/internal/pq"
)

// Time is simulation time in clock units.
type Time = int64

// Event is one scheduled event notice.
type Event struct {
	// At is the scheduled execution time.
	At       Time
	fn       func()
	canceled bool
	node     ilist.Node[*Event] // wheel linkage
	handle   pq.Handle          // event-list linkage
}

// Canceled reports whether the event was canceled before execution.
func (e *Event) Canceled() bool { return e.canceled }

// Mechanism is a time-flow mechanism: a container of future events that
// yields them in time order.
type Mechanism interface {
	// Name reports the mechanism's short name.
	Name() string
	// Now reports the current simulation time.
	Now() Time
	// Schedule inserts an event notice; ev.At must be >= Now.
	Schedule(ev *Event)
	// Next removes and returns the earliest event, advancing the clock.
	// ok is false when no events remain.
	Next() (ev *Event, ok bool)
	// Pending reports the number of event notices held (including
	// canceled ones that have not yet been discarded).
	Pending() int
}

// Stats counts the work a simulation run performed.
type Stats struct {
	Scheduled       uint64 // events inserted
	Executed        uint64 // event actions run
	Canceled        uint64 // events canceled before execution
	Discarded       uint64 // canceled notices dropped at pop time
	OverflowInserts uint64 // wheel: events placed on the overflow list
	OverflowScanned uint64 // wheel: overflow entries examined at rotation
	EmptySteps      uint64 // wheel: empty slots stepped through
	PeakPending     int    // high-water mark of stored notices
}

// Engine runs events against a pluggable mechanism.
type Engine struct {
	mech Mechanism
	// Stats accumulates work counters for the lifetime of the engine.
	Stats Stats
}

// NewEngine returns an engine over the given time-flow mechanism.
func NewEngine(m Mechanism) *Engine { return &Engine{mech: m} }

// Mechanism returns the engine's time-flow mechanism.
func (e *Engine) Mechanism() Mechanism { return e.mech }

// Now reports the current simulation time.
func (e *Engine) Now() Time { return e.mech.Now() }

// Pending reports the number of stored event notices.
func (e *Engine) Pending() int { return e.mech.Pending() }

// At schedules fn to run at absolute time t (>= Now) and returns the
// event notice, which may later be canceled.
func (e *Engine) At(t Time, fn func()) (*Event, error) {
	if t < e.mech.Now() {
		return nil, fmt.Errorf("sim: cannot schedule at %d, now is %d", t, e.mech.Now())
	}
	ev := &Event{At: t, fn: fn}
	ev.node.Value = ev
	e.mech.Schedule(ev)
	e.Stats.Scheduled++
	if p := e.mech.Pending(); p > e.Stats.PeakPending {
		e.Stats.PeakPending = p
	}
	return ev, nil
}

// After schedules fn to run d units from now.
func (e *Engine) After(d Time, fn func()) (*Event, error) {
	if d < 0 {
		return nil, fmt.Errorf("sim: negative delay %d", d)
	}
	return e.At(e.mech.Now()+d, fn)
}

// Cancel marks the event canceled; the notice remains stored until its
// scheduled time, when the scheduler discards it (the simulation-language
// convention the paper contrasts with timer STOP_TIMER).
func (e *Engine) Cancel(ev *Event) {
	if ev != nil && !ev.canceled {
		ev.canceled = true
		e.Stats.Canceled++
	}
}

// Step executes the next event. It returns false when no events remain
// or the next event lies beyond limit.
func (e *Engine) Step(limit Time) bool {
	for {
		ev, ok := e.mech.Next()
		if !ok {
			return false
		}
		if ev.At > limit {
			// Put it back: mechanisms tolerate rescheduling at Now or
			// later; At > limit >= Now keeps the contract.
			e.mech.Schedule(ev)
			return false
		}
		if ev.canceled {
			e.Stats.Discarded++
			continue
		}
		e.Stats.Executed++
		ev.fn()
		return true
	}
}

// Run executes events until the event set is empty or the next event
// lies beyond limit. It returns the number of events executed.
func (e *Engine) Run(limit Time) int {
	n := 0
	for e.Step(limit) {
		n++
	}
	return n
}
