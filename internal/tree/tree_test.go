package tree

import (
	"testing"

	"timingwheels/internal/core"
	"timingwheels/internal/dist"
	"timingwheels/internal/metrics"
)

func noop(core.ID) {}

func kinds() []Kind {
	return []Kind{KindHeap, KindLeftist, KindSkew, KindBST, KindAVL, KindPairing}
}

func TestNames(t *testing.T) {
	want := map[Kind]string{
		KindHeap:    "scheme3-heap",
		KindLeftist: "scheme3-leftist",
		KindSkew:    "scheme3-skew",
		KindBST:     "scheme3-bst",
		KindAVL:     "scheme3-avl",
		KindPairing: "scheme3-pairing",
	}
	for k, w := range want {
		if got := NewScheme3(k, nil).Name(); got != w {
			t.Errorf("Name(%s)=%q, want %q", k, got, w)
		}
	}
	// Unknown kinds fall back to the heap.
	if got := NewScheme3(Kind("bogus"), nil).Name(); got != "scheme3-heap" {
		t.Errorf("fallback Name=%q", got)
	}
}

func TestInvariantsUnderChurn(t *testing.T) {
	for _, k := range kinds() {
		s := NewScheme3(k, nil)
		rng := dist.NewRNG(5)
		var handles []core.Handle
		for i := 0; i < 500; i++ {
			switch rng.Intn(3) {
			case 0, 1:
				h, err := s.StartTimer(core.Tick(1+rng.Intn(60)), noop)
				if err != nil {
					t.Fatal(err)
				}
				handles = append(handles, h)
			case 2:
				s.Tick()
			}
			if len(handles) > 0 && rng.Intn(4) == 0 {
				i := rng.Intn(len(handles))
				_ = s.StopTimer(handles[i]) // may already have fired
				handles = append(handles[:i], handles[i+1:]...)
			}
			if !s.CheckInvariants() {
				t.Fatalf("%s: invariants broken at op %d", s.Name(), i)
			}
		}
	}
}

func TestNextExpiryAndAdvance(t *testing.T) {
	for _, k := range kinds() {
		s := NewScheme3(k, nil)
		if _, ok := s.NextExpiry(); ok {
			t.Fatalf("%s: empty NextExpiry should be !ok", s.Name())
		}
		fired := 0
		if _, err := s.StartTimer(500, func(core.ID) { fired++ }); err != nil {
			t.Fatal(err)
		}
		if next, ok := s.NextExpiry(); !ok || next != 500 {
			t.Fatalf("%s: NextExpiry=%d,%v", s.Name(), next, ok)
		}
		if got := s.Advance(1000); got != 1 || fired != 1 {
			t.Fatalf("%s: Advance fired %d (cb %d)", s.Name(), got, fired)
		}
		if s.Now() != 1000 || s.Len() != 0 {
			t.Fatalf("%s: Now=%d Len=%d", s.Name(), s.Now(), s.Len())
		}
	}
}

// TestStartCostLogarithmic verifies the Figure 6 shape: heap insertion
// comparisons grow like log n, far slower than linearly.
func TestStartCostLogarithmic(t *testing.T) {
	costAt := func(n int) float64 {
		var cost metrics.Cost
		s := NewScheme3(KindHeap, &cost)
		rng := dist.NewRNG(8)
		for i := 0; i < n; i++ {
			if _, err := s.StartTimer(core.Tick(1+rng.Intn(1_000_000)), noop); err != nil {
				t.Fatal(err)
			}
		}
		cost.Reset()
		const probes = 200
		for i := 0; i < probes; i++ {
			if _, err := s.StartTimer(core.Tick(1+rng.Intn(1_000_000)), noop); err != nil {
				t.Fatal(err)
			}
		}
		return float64(cost.Units()) / probes
	}
	c256, c65536 := costAt(256), costAt(65536)
	// 65536/256 = 256x more timers; log ratio is 16/8 = 2x. Allow slack
	// but reject anything close to linear growth.
	if c65536 > 6*c256 {
		t.Fatalf("heap start cost grew %0.1f -> %0.1f; not logarithmic", c256, c65536)
	}
}

// TestBSTDegeneratesOnEqualIntervals reproduces section 4.1.1: constant
// intervals produce monotone keys, so BST insertion cost grows linearly
// while the heap stays logarithmic.
func TestBSTDegeneratesOnEqualIntervals(t *testing.T) {
	insertCost := func(k Kind, n int) float64 {
		var cost metrics.Cost
		s := NewScheme3(k, &cost)
		for i := 0; i < n; i++ {
			if _, err := s.StartTimer(1_000_000, noop); err != nil {
				t.Fatal(err)
			}
			s.Tick() // advance the clock so keys strictly increase
		}
		cost.Reset()
		const probes = 50
		for i := 0; i < probes; i++ {
			if _, err := s.StartTimer(1_000_000, noop); err != nil {
				t.Fatal(err)
			}
		}
		return float64(cost.Units()) / probes
	}
	bst := insertCost(KindBST, 2000)
	heap := insertCost(KindHeap, 2000)
	if bst < 20*heap {
		t.Fatalf("BST cost %.1f vs heap %.1f: expected linear degeneration", bst, heap)
	}
	if bst < 2000 {
		t.Fatalf("BST insert cost %.1f; a degenerate spine should cost >= n units", bst)
	}
}
