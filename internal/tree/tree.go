// Package tree implements Scheme 3 of the paper ("tree-based
// algorithms", section 4.1.1): a timer facility backed by a priority
// queue of absolute expiry times. START_TIMER drops from Scheme 2's O(n)
// to O(log n); PER_TICK_BOOKKEEPING compares the clock against the
// smallest element only.
//
// The queue implementation is pluggable across the structures the paper
// lumps into Scheme 3 — binary heap, leftist tree, skew heap, and the
// unbalanced binary search tree whose degeneration on equal intervals
// the paper warns about.
package tree

import (
	"timingwheels/internal/core"
	"timingwheels/internal/metrics"
	"timingwheels/internal/pq"
)

// entry is one outstanding Scheme 3 timer.
type entry struct {
	id     core.ID
	when   core.Tick
	cb     core.Callback
	state  core.State
	owner  *Scheme3
	handle pq.Handle
}

// TimerID implements core.Handle.
func (e *entry) TimerID() core.ID { return e.id }

// Scheme3 is a priority-queue timer facility.
//
//	START_TIMER            O(log n) (O(n) for a degenerated BST)
//	STOP_TIMER             O(log n) via the stored queue handle
//	PER_TICK_BOOKKEEPING   O(1) when no timer expires
type Scheme3 struct {
	queue  pq.Queue[*entry]
	now    core.Tick
	nextID core.ID
	n      int
}

// Kind selects the priority-queue implementation for NewScheme3.
type Kind string

// The priority-queue implementations available for Scheme 3.
const (
	KindHeap    Kind = "heap"
	KindLeftist Kind = "leftist"
	KindSkew    Kind = "skew"
	KindBST     Kind = "bst"
	KindAVL     Kind = "avl"
	KindPairing Kind = "pairing"
)

// NewScheme3 returns an empty tree-based facility using the given
// priority-queue implementation, charging costs to cost (may be nil).
// Unknown kinds fall back to the binary heap.
func NewScheme3(kind Kind, cost *metrics.Cost) *Scheme3 {
	var q pq.Queue[*entry]
	switch kind {
	case KindLeftist:
		q = pq.NewLeftist[*entry](cost)
	case KindSkew:
		q = pq.NewSkew[*entry](cost)
	case KindBST:
		q = pq.NewBST[*entry](cost)
	case KindAVL:
		q = pq.NewAVL[*entry](cost)
	case KindPairing:
		q = pq.NewPairing[*entry](cost)
	default:
		q = pq.NewHeap[*entry](cost)
	}
	return &Scheme3{queue: q}
}

// Name returns "scheme3-<queue>".
func (s *Scheme3) Name() string { return "scheme3-" + s.queue.Name() }

// Now reports the current virtual time.
func (s *Scheme3) Now() core.Tick { return s.now }

// Len reports the number of outstanding timers.
func (s *Scheme3) Len() int { return s.n }

// StartTimer inserts the timer's absolute expiry into the queue.
func (s *Scheme3) StartTimer(interval core.Tick, cb core.Callback) (core.Handle, error) {
	if err := core.CheckInterval(interval, cb); err != nil {
		return nil, err
	}
	e := &entry{id: s.nextID, when: s.now + interval, cb: cb, owner: s}
	s.nextID++
	e.handle = s.queue.Insert(int64(e.when), e)
	s.n++
	return e, nil
}

// StopTimer deletes the timer from the queue via its stored handle.
func (s *Scheme3) StopTimer(h core.Handle) error {
	e, ok := h.(*entry)
	if !ok || e.owner != s {
		return core.ErrForeignHandle
	}
	if e.state != core.StatePending {
		return core.ErrTimerNotPending
	}
	e.state = core.StateStopped
	s.queue.Remove(e.handle)
	s.n--
	return nil
}

// Tick advances the clock and pops every timer whose expiry has arrived.
func (s *Scheme3) Tick() int {
	s.now++
	fired := 0
	for {
		key, e, ok := s.queue.Min()
		if !ok || core.Tick(key) > s.now {
			return fired
		}
		s.queue.PopMin()
		s.n--
		if e.state != core.StatePending {
			continue
		}
		e.state = core.StateFired
		fired++
		e.cb(e.id)
	}
}

// NextExpiry reports the earliest outstanding expiry, for hosts with a
// single hardware timer. ok is false when no timers are outstanding.
func (s *Scheme3) NextExpiry() (core.Tick, bool) {
	key, _, ok := s.queue.Min()
	return core.Tick(key), ok
}

// Advance implements core.Advancer by jumping between expiries.
func (s *Scheme3) Advance(n core.Tick) int {
	fired := 0
	target := s.now + n
	for s.now < target {
		next, ok := s.NextExpiry()
		if !ok || next > target {
			s.now = target
			return fired
		}
		s.now = next - 1
		fired += s.Tick()
	}
	return fired
}

// CheckInvariants delegates to the underlying queue's structural checks.
func (s *Scheme3) CheckInvariants() bool { return s.queue.CheckInvariants() }

var (
	_ core.Facility = (*Scheme3)(nil)
	_ core.Advancer = (*Scheme3)(nil)
)
