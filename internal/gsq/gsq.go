// Package gsq implements a grouped sorting queue: the "dynamic update"
// timer structure of the post-1987 literature (PAPERS.md: "Design of a
// Timer Queue Supporting Dynamic Update Operations", "A Grouped Sorting
// Queue Supporting Dynamic Updates for Timer Management in High-Speed
// NICs"), built as a peer of the paper's schemes 5/6/7.
//
// Timers are grouped by coarse deadline band — a band covers width
// consecutive ticks (width is a power of two, so the band of an absolute
// expiry is one shift) — and a band's timers are sorted only when the
// band comes due. The structure is a hashed ring of bands, like Scheme
// 6's hashed wheel but one level up: band epoch e lives in slot
// e % bands, and entries for a later epoch that happens to share the
// slot are filtered out by an epoch compare during extraction (the
// analogue of Scheme 6's stored revolution count).
//
//	START_TIMER            O(1) worst case (push onto an unsorted band)
//	STOP_TIMER             O(1) worst case (doubly-linked unlink)
//	RESET (in place)       O(1) worst case: unlink from the current
//	                       band, relink into the target band — no
//	                       cascade, no re-discretization, same entry,
//	                       same ID. This is the operation wheels lack:
//	                       their Reset is a stop+start that re-pays
//	                       discretization, and every surviving timer is
//	                       still touched once per revolution (Scheme 6)
//	                       or cascaded between levels (Scheme 7).
//	PER_TICK_BOOKKEEPING   amortized O(1) + O(k log k) once per band
//	                       for the k timers that are STILL THERE when
//	                       the band comes due.
//
// The headline property on reset-dominated workloads: a timer that is
// reset away before its band comes due is never sorted at all — the
// lazy sort only ever pays for timers that survive. A retransmit timer
// reset on every ACK costs two unlinks per ACK and nothing else.
//
// Sizing: bands×width should cover the common interval range, exactly
// like a wheel's slot count. Timers due within the CURRENT band land in
// an unsorted young list that per-tick bookkeeping scans, so width
// should not greatly exceed the typical short interval; timers beyond
// bands×width wrap and are filtered at extraction, exactly like Scheme
// 6 revolutions.
package gsq

import (
	"cmp"
	"fmt"
	"math/bits"
	"slices"

	"timingwheels/internal/core"
	"timingwheels/internal/ilist"
	"timingwheels/internal/metrics"
)

// entry is one outstanding grouped-sorting-queue timer.
type entry struct {
	id      core.ID
	when    core.Tick // absolute expiry; the band is when>>shift
	cb      core.Callback
	pcb     core.PayloadCallback
	payload any
	state   core.State
	// pooled marks entries started through StartTimerPayload: recycled
	// onto the free list as soon as they fire or are stopped.
	pooled bool
	// inBatch marks an entry collected into the current Tick's firing
	// batch. A sibling callback may stop it (release is deferred to the
	// batch loop so the entry is not recycled while still referenced)
	// or reset it in place (the relink re-admits it; the batch loop
	// skips entries that are attached again).
	inBatch bool
	owner   *Scheme
	node    ilist.Node[*entry]
}

// TimerID implements core.Handle.
func (e *entry) TimerID() core.ID { return e.id }

// fire runs the entry's expiry action through whichever callback form it
// was started with.
func (e *entry) fire() {
	if e.pcb != nil {
		e.pcb(e.id, e.payload)
		return
	}
	e.cb(e.id)
}

// Scheme is the grouped sorting queue facility.
type Scheme struct {
	slots []ilist.List[*entry] // band ring: epoch e lives in slots[e%bands]
	mask  int                  // len(slots)-1 if power of two, else -1
	shift uint                 // width == 1<<shift; band of when is when>>shift
	width core.Tick

	// cur holds the current band's survivors, sorted ascending by
	// expiry (built by one lazy sort when the band came due); young
	// holds timers admitted after that sort with deadlines inside the
	// current band, unsorted.
	cur      ilist.List[*entry]
	young    ilist.List[*entry]
	curEpoch int64

	now    core.Tick
	nextID core.ID
	n      int
	cost   *metrics.Cost

	// free is the entry free list for the StartTimerPayload fast path.
	free    []*entry
	batch   []*entry
	sortBuf []*entry

	// Lazy-sort diagnostics: how many band sorts ran and how many
	// entries passed through them. Entries reset away before their band
	// came due never appear in sortedEntries — the amortization the
	// scheme exists for.
	sorts         uint64
	sortedEntries uint64
}

// New returns a grouped sorting queue with the given number of bands,
// each width ticks wide, charging costs to cost (may be nil). Width must
// be a power of two (the band of an expiry is then one shift); any band
// count >= 1 works, with the AND-mask index fast path when it is a power
// of two.
func New(bands int, width core.Tick, cost *metrics.Cost) *Scheme {
	if bands < 1 {
		panic(fmt.Sprintf("gsq: band count must be >= 1, got %d", bands))
	}
	if width < 1 || width&(width-1) != 0 {
		panic(fmt.Sprintf("gsq: band width must be a power of two, got %d", width))
	}
	s := &Scheme{
		slots: make([]ilist.List[*entry], bands),
		mask:  -1,
		shift: uint(bits.TrailingZeros64(uint64(width))),
		width: width,
		cost:  cost,
	}
	if bands&(bands-1) == 0 {
		s.mask = bands - 1
	}
	for i := range s.slots {
		s.slots[i].Init(cost)
	}
	s.cur.Init(cost)
	s.young.Init(cost)
	return s
}

// Name returns "gsq".
func (s *Scheme) Name() string { return "gsq" }

// Bands reports the number of band slots.
func (s *Scheme) Bands() int { return len(s.slots) }

// Width reports the band width in ticks.
func (s *Scheme) Width() core.Tick { return s.width }

// SortStats reports how many lazy band sorts have run and how many
// entries passed through them in total.
func (s *Scheme) SortStats() (sorts, entries uint64) { return s.sorts, s.sortedEntries }

// epochOf reports the band epoch an absolute expiry belongs to.
func (s *Scheme) epochOf(when core.Tick) int64 { return int64(when) >> s.shift }

// index reduces a band epoch to a ring slot.
func (s *Scheme) index(epoch int64) int {
	if s.mask >= 0 {
		return int(uint64(epoch) & uint64(s.mask))
	}
	i := int(epoch % int64(len(s.slots)))
	if i < 0 {
		i += len(s.slots)
	}
	return i
}

// acquire returns a recycled entry (reset to pending) or a fresh one.
func (s *Scheme) acquire() *entry {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		e.state = core.StatePending
		return e
	}
	e := &entry{}
	e.node.Value = e
	return e
}

// release parks a pooled entry on the free list. The caller guarantees
// the node is detached, the entry reached a terminal state, and it is
// not (or no longer) referenced by the firing batch.
func (s *Scheme) release(e *entry) {
	e.cb = nil
	e.pcb = nil
	e.payload = nil
	s.free = append(s.free, e)
}

// place links a pending entry into the structure according to its
// (already set) absolute expiry: the young list when it is due within
// the current band, the band ring otherwise. O(1) always.
func (s *Scheme) place(e *entry) {
	ep := s.epochOf(e.when)
	s.cost.Compare(1) // current-band test
	if ep == s.curEpoch {
		s.young.PushFront(&e.node)
	} else {
		s.cost.Write(1) // store the absolute expiry with the entry
		s.slots[s.index(ep)].PushFront(&e.node)
	}
	s.n++
}

// StartTimer groups the timer into its deadline band in O(1).
func (s *Scheme) StartTimer(interval core.Tick, cb core.Callback) (core.Handle, error) {
	if err := core.CheckInterval(interval, cb); err != nil {
		return nil, err
	}
	return s.insert(interval, cb, nil, nil, false), nil
}

// StartTimerPayload implements core.PayloadStarter: like StartTimer, but
// the entry carries an opaque payload, fires through the shared cb, and
// is recycled on the facility's free list at fire/stop time.
func (s *Scheme) StartTimerPayload(interval core.Tick, payload any, cb core.PayloadCallback) (core.Handle, error) {
	if cb == nil {
		return nil, core.ErrNilCallback
	}
	if interval < 1 {
		return nil, core.ErrNonPositiveInterval
	}
	return s.insert(interval, nil, cb, payload, true), nil
}

// insert links one validated timer into its band.
func (s *Scheme) insert(interval core.Tick, cb core.Callback, pcb core.PayloadCallback, payload any, pooled bool) *entry {
	e := s.acquire()
	e.id = s.nextID
	s.nextID++
	e.when = s.now + interval
	e.cb, e.pcb, e.payload = cb, pcb, payload
	e.pooled = pooled
	e.owner = s
	s.place(e)
	return e
}

// StopTimer unlinks the timer from its band in O(1).
func (s *Scheme) StopTimer(h core.Handle) error {
	e, ok := h.(*entry)
	if !ok || e.owner != s {
		return core.ErrForeignHandle
	}
	return s.stopEntry(e)
}

// StopTimerID implements core.IDStopper: StopTimer guarded against
// recycled-handle ABA by the never-reused timer ID.
func (s *Scheme) StopTimerID(h core.Handle, id core.ID) error {
	e, ok := h.(*entry)
	if !ok || e.owner != s {
		return core.ErrForeignHandle
	}
	if e.id != id {
		return core.ErrTimerNotPending
	}
	return s.stopEntry(e)
}

// stopEntry cancels an outstanding entry. An entry sitting in the
// current firing batch (detached, pending) is marked stopped and left
// for the batch loop to recycle.
func (s *Scheme) stopEntry(e *entry) error {
	if e.state != core.StatePending {
		return core.ErrTimerNotPending
	}
	e.state = core.StateStopped
	if e.node.Attached() {
		e.node.Detach()
		s.n--
		if e.pooled && !e.inBatch {
			s.release(e)
		}
	}
	return nil
}

// ResetTimer implements core.Resetter: the O(1) dynamic update. The
// timer keeps its entry and ID; it is unlinked from wherever it lives
// and relinked into the band of its new deadline. A timer that already
// fired or was stopped is refused with ErrTimerNotPending and nothing
// changes.
func (s *Scheme) ResetTimer(h core.Handle, interval core.Tick) error {
	e, ok := h.(*entry)
	if !ok || e.owner != s {
		return core.ErrForeignHandle
	}
	return s.resetEntry(e, interval)
}

// ResetTimerID implements core.IDResetter: ResetTimer guarded against
// recycled-handle ABA by the never-reused timer ID.
func (s *Scheme) ResetTimerID(h core.Handle, id core.ID, interval core.Tick) error {
	e, ok := h.(*entry)
	if !ok || e.owner != s {
		return core.ErrForeignHandle
	}
	if e.id != id {
		return core.ErrTimerNotPending
	}
	return s.resetEntry(e, interval)
}

// resetEntry re-arms a pending entry in place. An entry collected into
// the current firing batch but not yet fired (a sibling callback is
// resetting it) is re-admitted: relinking it makes the batch loop skip
// it, so it fires at the new deadline — exactly once.
func (s *Scheme) resetEntry(e *entry, interval core.Tick) error {
	if interval < 1 {
		return core.ErrNonPositiveInterval
	}
	if e.state != core.StatePending {
		return core.ErrTimerNotPending
	}
	if e.node.Attached() {
		e.node.Detach()
		s.n--
	}
	e.when = s.now + interval
	s.place(e)
	return nil
}

// Tick advances time by one tick. On entering a new band it performs
// the lazy sort: the band's survivors are extracted (entries for a
// later epoch sharing the slot stay, as with Scheme 6 revolutions),
// sorted once by expiry, and become the cur list. Expiry processing
// then pops due timers off the sorted head and sweeps the young list.
func (s *Scheme) Tick() int {
	s.now++
	if ep := s.epochOf(s.now); ep != s.curEpoch {
		s.enterBand(ep)
	}
	s.batch = s.batch[:0]
	// Sorted head: everything due is at the front.
	for {
		n := s.cur.Front()
		if n == nil {
			break
		}
		s.cost.Read(1)
		s.cost.Compare(1)
		if n.Value.when > s.now {
			break
		}
		s.cur.Remove(n)
		s.n--
		n.Value.inBatch = true
		s.batch = append(s.batch, n.Value)
	}
	// Young sweep: timers admitted into the current band after its sort.
	for n := s.young.Front(); n != nil; {
		next := n.Next()
		s.cost.Read(1)
		s.cost.Compare(1)
		if n.Value.when <= s.now {
			s.young.Remove(n)
			s.n--
			n.Value.inBatch = true
			s.batch = append(s.batch, n.Value)
		}
		n = next
	}
	fired := 0
	for _, e := range s.batch {
		e.inBatch = false
		if e.node.Attached() {
			// A sibling callback reset it in place: it is pending again
			// at a new deadline and must not fire now.
			continue
		}
		if e.state == core.StatePending {
			e.state = core.StateFired
			fired++
			e.fire()
		}
		// Fired, or stopped by a sibling callback while in the batch.
		if e.pooled {
			s.release(e)
		}
	}
	return fired
}

// enterBand makes ep the current band: its slot's entries for exactly
// this epoch are extracted and sorted into cur. Ticks advance one at a
// time, so bands are entered in order and cur/young are empty here by
// construction (every resident was due by the last tick of the old
// band).
func (s *Scheme) enterBand(ep int64) {
	s.curEpoch = ep
	slot := &s.slots[s.index(ep)]
	s.cost.Read(1)
	s.cost.Compare(1)
	if slot.Empty() {
		return
	}
	s.sortBuf = s.sortBuf[:0]
	for n := slot.Front(); n != nil; {
		next := n.Next()
		s.cost.Read(1)
		s.cost.Compare(1) // epoch compare, the revolution filter
		if s.epochOf(n.Value.when) == ep {
			slot.Remove(n)
			s.sortBuf = append(s.sortBuf, n.Value)
		}
		n = next
	}
	if k := len(s.sortBuf); k > 0 {
		// Width-1 bands need no sort: epoch == when, so every entry in
		// the band shares one deadline and any order is sorted order.
		// That configuration is a Scheme 6 wheel with O(1) Reset.
		if k > 1 && s.shift > 0 {
			slices.SortFunc(s.sortBuf, func(a, b *entry) int {
				return cmp.Compare(a.when, b.when)
			})
			// Charge the comparison sort: ~k·ceil(log2 k) compares.
			s.cost.Compare(k * bits.Len(uint(k-1)))
		}
		s.sorts++
		s.sortedEntries += uint64(k)
		for i, e := range s.sortBuf {
			s.cur.PushBack(&e.node)
			s.sortBuf[i] = nil
		}
	}
}

// CheckInvariants verifies the structural invariants, for property
// tests:
//
//   - every band slot holds only pending entries of a strictly future
//     epoch that hashes to that slot;
//   - cur holds only pending current-epoch entries, sorted ascending by
//     expiry, none already due;
//   - young holds only pending current-epoch entries, none already due;
//   - every list is link-consistent and the entry count equals Len().
func (s *Scheme) CheckInvariants() error {
	total := 0
	for i := range s.slots {
		if !s.slots[i].CheckInvariants() {
			return fmt.Errorf("gsq: slot %d link invariants violated", i)
		}
		var err error
		s.slots[i].Do(func(n *ilist.Node[*entry]) {
			e := n.Value
			ep := s.epochOf(e.when)
			switch {
			case e.state != core.StatePending:
				err = fmt.Errorf("gsq: slot %d holds %v entry id=%d", i, e.state, e.id)
			case ep <= s.curEpoch:
				err = fmt.Errorf("gsq: slot %d holds entry id=%d of non-future epoch %d (cur %d)", i, e.id, ep, s.curEpoch)
			case s.index(ep) != i:
				err = fmt.Errorf("gsq: entry id=%d epoch %d hashed to slot %d, found in %d", e.id, ep, s.index(ep), i)
			}
		})
		if err != nil {
			return err
		}
		total += s.slots[i].Len()
	}
	if !s.cur.CheckInvariants() || !s.young.CheckInvariants() {
		return fmt.Errorf("gsq: cur/young link invariants violated")
	}
	var err error
	prev := core.Tick(-1 << 62)
	s.cur.Do(func(n *ilist.Node[*entry]) {
		e := n.Value
		switch {
		case e.state != core.StatePending:
			err = fmt.Errorf("gsq: cur holds %v entry id=%d", e.state, e.id)
		case s.epochOf(e.when) != s.curEpoch:
			err = fmt.Errorf("gsq: cur holds entry id=%d of epoch %d (cur %d)", e.id, s.epochOf(e.when), s.curEpoch)
		case e.when <= s.now:
			err = fmt.Errorf("gsq: cur holds already-due entry id=%d when=%d now=%d", e.id, e.when, s.now)
		case e.when < prev:
			err = fmt.Errorf("gsq: cur not sorted at entry id=%d", e.id)
		}
		prev = e.when
	})
	if err != nil {
		return err
	}
	s.young.Do(func(n *ilist.Node[*entry]) {
		e := n.Value
		switch {
		case e.state != core.StatePending:
			err = fmt.Errorf("gsq: young holds %v entry id=%d", e.state, e.id)
		case s.epochOf(e.when) != s.curEpoch:
			err = fmt.Errorf("gsq: young holds entry id=%d of epoch %d (cur %d)", e.id, s.epochOf(e.when), s.curEpoch)
		case e.when <= s.now:
			err = fmt.Errorf("gsq: young holds already-due entry id=%d when=%d now=%d", e.id, e.when, s.now)
		}
	})
	if err != nil {
		return err
	}
	total += s.cur.Len() + s.young.Len()
	if total != s.n {
		return fmt.Errorf("gsq: %d entries linked, Len() reports %d", total, s.n)
	}
	return nil
}

// Now reports the current virtual time.
func (s *Scheme) Now() core.Tick { return s.now }

// Len reports the number of outstanding timers.
func (s *Scheme) Len() int { return s.n }

var (
	_ core.Facility       = (*Scheme)(nil)
	_ core.PayloadStarter = (*Scheme)(nil)
	_ core.IDStopper      = (*Scheme)(nil)
	_ core.Resetter       = (*Scheme)(nil)
	_ core.IDResetter     = (*Scheme)(nil)
)
