package gsq

import (
	"math/rand"
	"testing"

	"timingwheels/internal/core"
)

// fireAt advances s one tick at a time until target, recording each
// fired count, and fails if the invariants break along the way.
func advanceChecked(t *testing.T, s *Scheme, n core.Tick) int {
	t.Helper()
	fired := 0
	for i := core.Tick(0); i < n; i++ {
		fired += s.Tick()
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("after tick to %d: %v", s.Now(), err)
		}
	}
	return fired
}

func TestFireExactAcrossBands(t *testing.T) {
	s := New(8, 4, nil)
	// Intervals probing band edges, multi-wrap (>8*4=32), and the
	// current band.
	for _, iv := range []core.Tick{1, 2, 3, 4, 5, 7, 8, 9, 31, 32, 33, 100, 129} {
		fired := core.Tick(-1)
		start := s.Now()
		if _, err := s.StartTimer(iv, func(core.ID) { fired = s.Now() }); err != nil {
			t.Fatalf("start %d: %v", iv, err)
		}
		advanceChecked(t, s, iv+5)
		if fired != start+iv {
			t.Fatalf("interval %d: fired at %d, want %d", iv, fired, start+iv)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("Len=%d after drain", s.Len())
	}
}

func TestResetInPlaceKeepsEntryAndID(t *testing.T) {
	s := New(8, 4, nil)
	fired := 0
	h, err := s.StartTimerPayload(10, nil, func(core.ID, any) { fired++ })
	if err != nil {
		t.Fatal(err)
	}
	id := h.TimerID()
	// Reset to later: same handle, same ID, new deadline.
	if err := s.ResetTimerID(h, id, 20); err != nil {
		t.Fatal(err)
	}
	if h.TimerID() != id {
		t.Fatalf("in-place reset changed the ID: %d -> %d", id, h.TimerID())
	}
	advanceChecked(t, s, 19)
	if fired != 0 {
		t.Fatal("fired before the reset deadline")
	}
	advanceChecked(t, s, 1)
	if fired != 1 {
		t.Fatalf("fired=%d at the reset deadline, want 1", fired)
	}
	// The entry is recycled now: a stale reset against the old ID must
	// be refused.
	if err := s.ResetTimerID(h, id, 5); err != core.ErrTimerNotPending {
		t.Fatalf("stale ResetTimerID: %v, want ErrTimerNotPending", err)
	}
}

func TestResetToSoonerAndCurrentBand(t *testing.T) {
	s := New(8, 4, nil)
	fired := core.Tick(-1)
	h, err := s.StartTimer(100, func(core.ID) { fired = s.Now() })
	if err != nil {
		t.Fatal(err)
	}
	advanceChecked(t, s, 3)
	// Reset into the CURRENT band (interval 1 from now): the entry moves
	// from a far band slot into the young list.
	if err := s.ResetTimer(h, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	advanceChecked(t, s, 1)
	if fired != 4 {
		t.Fatalf("fired at %d, want 4", fired)
	}
}

func TestResetRefusedAfterStopAndFire(t *testing.T) {
	s := New(8, 4, nil)
	h, _ := s.StartTimer(5, func(core.ID) {})
	if err := s.StopTimer(h); err != nil {
		t.Fatal(err)
	}
	if err := s.ResetTimer(h, 5); err != core.ErrTimerNotPending {
		t.Fatalf("reset after stop: %v, want ErrTimerNotPending", err)
	}
	if s.Len() != 0 {
		t.Fatalf("refused reset re-armed: Len=%d", s.Len())
	}
	fired := 0
	h2, _ := s.StartTimer(2, func(core.ID) { fired++ })
	advanceChecked(t, s, 2)
	if fired != 1 {
		t.Fatal("precondition: timer should have fired")
	}
	if err := s.ResetTimer(h2, 5); err != core.ErrTimerNotPending {
		t.Fatalf("reset after fire: %v, want ErrTimerNotPending", err)
	}
	advanceChecked(t, s, 10)
	if fired != 1 {
		t.Fatalf("refused reset re-armed a fired timer: fired=%d", fired)
	}
}

// TestResetOfBatchResidentEntry is the reentrancy corner the in-place
// reset must get right: two timers due the same tick, the first one's
// callback resets the second in place. The second must not fire that
// tick — it fires exactly once, at its new deadline.
func TestResetOfBatchResidentEntry(t *testing.T) {
	s := New(8, 4, nil)
	bFired := 0
	// b goes in first: the young list is LIFO, so the resetter inserted
	// after it is collected (and fired) first, with b batch-resident.
	hb, err := s.StartTimer(3, func(core.ID) { bFired++ })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.StartTimer(3, func(core.ID) {
		// b is already in the firing batch; the in-place reset must
		// defer it to the new deadline anyway.
		if err := s.ResetTimer(hb, 7); err != nil {
			t.Errorf("reentrant reset: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	advanceChecked(t, s, 3)
	if bFired != 0 {
		t.Fatalf("b fired %d times on the reset tick, want 0", bFired)
	}
	advanceChecked(t, s, 7)
	if bFired != 1 {
		t.Fatalf("b fired %d times total, want exactly 1", bFired)
	}
	if s.Len() != 0 {
		t.Fatalf("Len=%d after drain", s.Len())
	}
}

// TestStopThenResetOfBatchResidentEntry: a sibling callback stops a
// batch-resident timer, then a reset on it must be refused, and the
// pooled entry must be recycled exactly once.
func TestStopThenResetOfBatchResidentEntry(t *testing.T) {
	s := New(8, 4, nil)
	bFired := 0
	h, err := s.StartTimerPayload(3, nil, func(core.ID, any) { bFired++ })
	if err != nil {
		t.Fatal(err)
	}
	hb, idb := h, h.TimerID()
	// Inserted after b, so this callback runs first (LIFO young list)
	// with b batch-resident.
	if _, err := s.StartTimer(3, func(core.ID) {
		if err := s.StopTimerID(hb, idb); err != nil {
			t.Errorf("reentrant stop: %v", err)
		}
		if err := s.ResetTimerID(hb, idb, 5); err != core.ErrTimerNotPending {
			t.Errorf("reset after reentrant stop: %v, want ErrTimerNotPending", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	advanceChecked(t, s, 10)
	if bFired != 0 {
		t.Fatalf("stopped timer fired %d times", bFired)
	}
	// One release only: the free list must hand the entry back once.
	a := s.acquire()
	b := s.acquire()
	if a == b {
		t.Fatal("entry double-released onto the free list")
	}
}

// TestLazySortAmortization pins the headline property: timers reset
// away before their band comes due are never sorted.
func TestLazySortAmortization(t *testing.T) {
	s := New(16, 8, nil)
	// 100 timers due in band 2; reset all but 3 away to a far band
	// before it arrives.
	handles := make([]core.Handle, 100)
	for i := range handles {
		h, err := s.StartTimer(20, func(core.ID) {})
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	for _, h := range handles[3:] {
		if err := s.ResetTimer(h, 1000); err != nil {
			t.Fatal(err)
		}
	}
	advanceChecked(t, s, 25)
	_, sorted := s.SortStats()
	if sorted != 3 {
		t.Fatalf("sorted %d entries, want exactly the 3 survivors", sorted)
	}
}

func TestForeignHandleAndABA(t *testing.T) {
	a := New(8, 4, nil)
	b := New(8, 4, nil)
	h, _ := a.StartTimer(5, func(core.ID) {})
	if err := b.ResetTimer(h, 5); err != core.ErrForeignHandle {
		t.Fatalf("foreign reset: %v, want ErrForeignHandle", err)
	}
	if err := b.StopTimer(h); err != core.ErrForeignHandle {
		t.Fatalf("foreign stop: %v, want ErrForeignHandle", err)
	}
	if err := a.ResetTimer(h, 0); err != core.ErrNonPositiveInterval {
		t.Fatalf("zero-interval reset: %v, want ErrNonPositiveInterval", err)
	}
}

// TestRandomOpsInvariants drives a random schedule/stop/reset/tick mix
// against CheckInvariants and an expiry-count ledger.
func TestRandomOpsInvariants(t *testing.T) {
	for _, cfg := range []struct{ bands, width int }{
		{32, 8}, {8, 1}, {1, 16}, {7, 4}, // incl. non-pow2 bands, single band, width 1
	} {
		s := New(cfg.bands, core.Tick(cfg.width), nil)
		rng := rand.New(rand.NewSource(42))
		type live struct {
			h  core.Handle
			id core.ID
		}
		var timers []live
		started, fired, stopped := 0, 0, 0
		count := func(core.ID) { fired++ }
		for op := 0; op < 5000; op++ {
			switch r := rng.Intn(10); {
			case r < 4:
				h, err := s.StartTimer(core.Tick(1+rng.Intn(100)), count)
				if err != nil {
					t.Fatal(err)
				}
				timers = append(timers, live{h, h.TimerID()})
				started++
			case r < 6 && len(timers) > 0:
				i := rng.Intn(len(timers))
				if err := s.StopTimerID(timers[i].h, timers[i].id); err == nil {
					stopped++
				}
				timers[i] = timers[len(timers)-1]
				timers = timers[:len(timers)-1]
			case r < 8 && len(timers) > 0:
				i := rng.Intn(len(timers))
				err := s.ResetTimerID(timers[i].h, timers[i].id, core.Tick(1+rng.Intn(100)))
				if err != nil && err != core.ErrTimerNotPending {
					t.Fatal(err)
				}
			default:
				s.Tick()
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("bands=%d width=%d op %d: %v", cfg.bands, cfg.width, op, err)
			}
		}
		for s.Len() > 0 {
			s.Tick()
		}
		if started != fired+stopped {
			t.Fatalf("bands=%d width=%d ledger: started=%d fired=%d stopped=%d",
				cfg.bands, cfg.width, started, fired, stopped)
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { New(0, 4, nil) },
		func() { New(8, 0, nil) },
		func() { New(8, 3, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("constructor accepted invalid parameters")
				}
			}()
			bad()
		}()
	}
}
