package lease

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"timingwheels/timer"
)

// fakeClock is a mutex-guarded manual clock shared by the runtime and
// the table so tests are fully deterministic.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

type fixture struct {
	clk *fakeClock
	rt  *timer.Runtime
	tb  *Table

	mu      sync.Mutex
	expired map[uint64][]uint64
	fires   atomic.Uint64
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	fx := &fixture{clk: newFakeClock(), expired: map[uint64][]uint64{}}
	fx.rt = timer.NewRuntime(
		timer.WithManualDriver(),
		timer.WithNowFunc(fx.clk.Now),
		timer.WithGranularity(time.Millisecond),
	)
	t.Cleanup(func() { fx.rt.Close() })
	fx.tb = NewTable(fx.rt, Config{
		DefaultTTL: 100 * time.Millisecond,
		MinTTL:     time.Millisecond,
		Now:        fx.clk.Now,
		OnExpire: func(id uint64, timers []uint64) {
			fx.mu.Lock()
			fx.expired[id] = timers
			fx.mu.Unlock()
			fx.fires.Add(1)
		},
	})
	return fx
}

// step advances the shared clock and polls the runtime so due watchdogs
// fire.
func (fx *fixture) step(d time.Duration) {
	fx.clk.Advance(d)
	fx.rt.Poll()
}

func (fx *fixture) expiredTimers(id uint64) ([]uint64, bool) {
	fx.mu.Lock()
	defer fx.mu.Unlock()
	ts, ok := fx.expired[id]
	return ts, ok
}

func TestGrantExpiresWithOwnedTimers(t *testing.T) {
	fx := newFixture(t)
	id, expiry, err := fx.tb.Grant(50 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if want := fx.clk.Now().Add(50 * time.Millisecond); !expiry.Equal(want) {
		t.Fatalf("expiry %v, want %v", expiry, want)
	}
	if !fx.tb.Attach(id, 7) || !fx.tb.Attach(id, 3) || !fx.tb.Attach(id, 11) {
		t.Fatal("attach to live lease failed")
	}
	fx.tb.Detach(id, 11)

	fx.step(40 * time.Millisecond)
	if fx.fires.Load() != 0 {
		t.Fatal("expired before TTL")
	}
	fx.step(20 * time.Millisecond)
	ts, ok := fx.expiredTimers(id)
	if !ok {
		t.Fatal("lease did not expire after TTL")
	}
	if len(ts) != 2 || ts[0] != 3 || ts[1] != 7 {
		t.Fatalf("expired timer set = %v, want [3 7]", ts)
	}
	st := fx.tb.Stats()
	if st.Active != 0 || st.Granted != 1 || st.Expired != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if fx.tb.Attach(id, 99) {
		t.Fatal("attach to expired lease succeeded")
	}
}

func TestRenewOutlivesWatchdog(t *testing.T) {
	fx := newFixture(t)
	id, _, err := fx.tb.Grant(50 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Heartbeat at 30ms: expiry moves without touching the armed timer.
	fx.step(30 * time.Millisecond)
	if _, ok := fx.tb.Renew(id, 50*time.Millisecond); !ok {
		t.Fatal("renew of live lease failed")
	}
	// Original watchdog fires at 50ms, sees the moved expiry, re-arms.
	fx.step(30 * time.Millisecond)
	if fx.fires.Load() != 0 {
		t.Fatal("renewed lease expired at the original TTL")
	}
	// No further heartbeats: the chased expiry (80ms) passes.
	fx.step(30 * time.Millisecond)
	if fx.fires.Load() != 1 {
		t.Fatalf("lease did not expire after renewal lapsed (fires=%d)", fx.fires.Load())
	}
	if st := fx.tb.Stats(); st.Renewed != 1 || st.Expired != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestReleaseStopsWatchdog(t *testing.T) {
	fx := newFixture(t)
	id, _, err := fx.tb.Grant(20 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	fx.tb.Attach(id, 42)
	ids, ok := fx.tb.Release(id)
	if !ok || len(ids) != 1 || ids[0] != 42 {
		t.Fatalf("release = %v, %v", ids, ok)
	}
	fx.step(50 * time.Millisecond)
	if fx.fires.Load() != 0 {
		t.Fatal("released lease still expired")
	}
	if st := fx.tb.Stats(); st.Released != 1 || st.Active != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if _, ok := fx.tb.Release(id); ok {
		t.Fatal("double release succeeded")
	}
}

func TestRestorePastExpiryFiresImmediately(t *testing.T) {
	fx := newFixture(t)
	// A lease recovered from the WAL whose expiry passed while the
	// daemon was down: it must expire through the normal path.
	gone := fx.clk.Now().Add(-10 * time.Second)
	if err := fx.tb.Restore(77, gone, []uint64{5, 6}); err != nil {
		t.Fatal(err)
	}
	fx.step(2 * time.Millisecond)
	ts, ok := fx.expiredTimers(77)
	if !ok || len(ts) != 2 {
		t.Fatalf("restored-expired lease: fired=%v timers=%v", ok, ts)
	}
	// nextID advanced past the restored ID.
	id, _, err := fx.tb.Grant(0)
	if err != nil {
		t.Fatal(err)
	}
	if id <= 77 {
		t.Fatalf("grant after Restore(77) returned id %d", id)
	}
}

func TestRestoreFutureExpiryLives(t *testing.T) {
	fx := newFixture(t)
	if err := fx.tb.Restore(5, fx.clk.Now().Add(60*time.Millisecond), []uint64{9}); err != nil {
		t.Fatal(err)
	}
	fx.step(30 * time.Millisecond)
	if fx.fires.Load() != 0 {
		t.Fatal("restored lease expired early")
	}
	snap := fx.tb.Snapshot()
	if len(snap) != 1 || snap[0].ID != 5 || len(snap[0].Timers) != 1 {
		t.Fatalf("snapshot: %+v", snap)
	}
	fx.step(40 * time.Millisecond)
	if _, ok := fx.expiredTimers(5); !ok {
		t.Fatal("restored lease never expired")
	}
}

func TestCloseStopsEverything(t *testing.T) {
	fx := newFixture(t)
	if _, _, err := fx.tb.Grant(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	fx.tb.Close()
	fx.step(50 * time.Millisecond)
	if fx.fires.Load() != 0 {
		t.Fatal("closed table expired a lease")
	}
	if _, _, err := fx.tb.Grant(0); err != ErrClosed {
		t.Fatalf("grant after close: %v", err)
	}
	if err := fx.tb.Restore(9, fx.clk.Now(), nil); err != ErrClosed {
		t.Fatalf("restore after close: %v", err)
	}
	if _, ok := fx.tb.Renew(1, 0); ok {
		t.Fatal("renew after close succeeded")
	}
}

func TestTTLClamping(t *testing.T) {
	clk := newFakeClock()
	rt := timer.NewRuntime(timer.WithManualDriver(), timer.WithNowFunc(clk.Now),
		timer.WithGranularity(time.Millisecond))
	defer rt.Close()
	tb := NewTable(rt, Config{
		DefaultTTL: 40 * time.Millisecond,
		MinTTL:     10 * time.Millisecond,
		MaxTTL:     100 * time.Millisecond,
		Now:        clk.Now,
	})
	_, exp, err := tb.Grant(0) // default
	if err != nil {
		t.Fatal(err)
	}
	if got := exp.Sub(clk.Now()); got != 40*time.Millisecond {
		t.Fatalf("default TTL = %v", got)
	}
	_, exp, _ = tb.Grant(time.Millisecond) // clamped up
	if got := exp.Sub(clk.Now()); got != 10*time.Millisecond {
		t.Fatalf("min clamp = %v", got)
	}
	_, exp, _ = tb.Grant(time.Hour) // clamped down
	if got := exp.Sub(clk.Now()); got != 100*time.Millisecond {
		t.Fatalf("max clamp = %v", got)
	}
}

// TestRenewHammer races heartbeats against watchdog firings on a real
// ticking runtime; under -race this is the ordering torture test. The
// lease must stay alive while heartbeats flow and die once they stop.
func TestRenewHammer(t *testing.T) {
	rt := timer.NewRuntime(timer.WithGranularity(time.Millisecond))
	defer rt.Close()
	var expirals atomic.Uint64
	tb := NewTable(rt, Config{
		MinTTL: time.Millisecond,
		OnExpire: func(uint64, []uint64) {
			expirals.Add(1)
		},
	})
	id, _, err := tb.Grant(5 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tb.Renew(id, 5*time.Millisecond)
				time.Sleep(time.Millisecond)
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	if expirals.Load() != 0 {
		t.Fatal("lease expired while heartbeats flowed")
	}
	close(stop)
	wg.Wait()
	deadline := time.Now().Add(2 * time.Second)
	for expirals.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("lease never expired after heartbeats stopped")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st := tb.Stats(); st.Active != 0 || st.Expired != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestRestorePastExpiryFiresExactlyOnce: a lease restored already past
// its TTL — a client that died while the daemon was down — must expire
// through OnExpire exactly once, no matter how long the clock keeps
// running afterwards, and must be fully dead to every other verb. This
// is the contract twd's boot (and a promoted standby's replay) leans
// on for its eager dead-client GC.
func TestRestorePastExpiryFiresExactlyOnce(t *testing.T) {
	fx := newFixture(t)
	gone := fx.clk.Now().Add(-30 * time.Second)
	if err := fx.tb.Restore(41, gone, []uint64{11, 12, 13}); err != nil {
		t.Fatal(err)
	}
	fx.step(2 * time.Millisecond)
	if got := fx.fires.Load(); got != 1 {
		t.Fatalf("OnExpire fired %d times, want exactly 1", got)
	}
	ts, _ := fx.expiredTimers(41)
	if len(ts) != 3 {
		t.Fatalf("expiry delivered %d owned timers, want 3", len(ts))
	}

	// Keep the world turning: repeated polls and long advances must not
	// re-deliver the expiry.
	for i := 0; i < 5; i++ {
		fx.step(time.Second)
	}
	if got := fx.fires.Load(); got != 1 {
		t.Fatalf("OnExpire re-fired: %d total deliveries", got)
	}

	// The dead lease is dead to every verb.
	if _, live := fx.tb.Expiry(41); live {
		t.Fatal("expired restored lease still reports alive")
	}
	if _, ok := fx.tb.Renew(41, 0); ok {
		t.Fatal("Renew on an expired restored lease succeeded")
	}
	if fx.tb.Attach(41, 99) {
		t.Fatal("Attach on an expired restored lease succeeded")
	}
	if st := fx.tb.Stats(); st.Active != 0 || st.Expired != 1 {
		t.Fatalf("stats = %+v, want 0 active / 1 expired", st)
	}
}
