// Package lease tracks client sessions for cmd/twd: heartbeat-renewed
// TTL leases whose watchdogs are the timer runtime's own timers, so
// liveness tracking rides the facility it protects (the deployment
// shape Lawn, arXiv:1906.10860, calls session expiry). A client that
// stops heartbeating has its lease expired and every timer it owns
// reported for garbage collection; the daemon logs the expiry and the
// cancellations to the WAL so a restart reconstructs the same view.
//
// Renewal never touches the armed watchdog timer: Renew only moves the
// lease's expiry instant under the table lock, and the watchdog — when
// it eventually fires — re-arms itself for the remainder. A chatty
// client therefore costs one map write per heartbeat, not a
// stop/re-schedule round trip through the wheel.
package lease

import (
	"errors"
	"sort"
	"sync"
	"time"

	"timingwheels/timer"
)

// Scheduler is the timer-facility surface the table needs; both
// *timer.Runtime and *timer.Sharded satisfy it.
type Scheduler interface {
	AfterFunc(d time.Duration, fn func(), opts ...timer.ScheduleOption) (*timer.Timer, error)
}

// ErrClosed reports an operation on a closed table.
var ErrClosed = errors.New("lease: table is closed")

// Config tunes a Table. The zero value is usable: 30s default TTL,
// clamped to [1s, 10m], no expiry callback.
type Config struct {
	// DefaultTTL applies when Grant or Renew is called with ttl <= 0.
	DefaultTTL time.Duration
	// MinTTL and MaxTTL clamp every requested TTL.
	MinTTL, MaxTTL time.Duration
	// OnExpire runs (outside the table lock, on the runtime's delivery
	// goroutine) when a lease expires without renewal. timers is the
	// sorted set of timer IDs the lease owned at expiry.
	OnExpire func(id uint64, timers []uint64)
	// Now overrides the clock; nil means time.Now. Tests drive it.
	Now func() time.Time
}

func (c *Config) norm() {
	if c.DefaultTTL <= 0 {
		c.DefaultTTL = 30 * time.Second
	}
	if c.MinTTL <= 0 {
		c.MinTTL = time.Second
	}
	if c.MaxTTL <= 0 {
		c.MaxTTL = 10 * time.Minute
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

func (c *Config) clamp(ttl time.Duration) time.Duration {
	if ttl <= 0 {
		ttl = c.DefaultTTL
	}
	if ttl < c.MinTTL {
		ttl = c.MinTTL
	}
	if ttl > c.MaxTTL {
		ttl = c.MaxTTL
	}
	return ttl
}

// lease is one session. watching reports an armed watchdog; a lease
// whose watchdog could not be re-armed (runtime draining) keeps its
// state and is re-watched on the next Renew.
type lease struct {
	expiry   time.Time
	timers   map[uint64]struct{}
	wd       *timer.Timer
	watching bool
}

// Stats is the table's counter snapshot.
type Stats struct {
	Active                              int
	Granted, Renewed, Expired, Released uint64
}

// Table is the lease registry. All methods are safe for concurrent use.
type Table struct {
	sched Scheduler
	cfg   Config

	mu     sync.Mutex
	leases map[uint64]*lease
	nextID uint64
	closed bool

	granted, renewed, expired, released uint64
}

// NewTable builds a table whose watchdogs schedule on sched.
func NewTable(sched Scheduler, cfg Config) *Table {
	cfg.norm()
	return &Table{sched: sched, cfg: cfg, leases: make(map[uint64]*lease)}
}

// Grant creates a lease with the clamped ttl and returns its ID and
// expiry instant.
func (tb *Table) Grant(ttl time.Duration) (uint64, time.Time, error) {
	ttl = tb.cfg.clamp(ttl)
	tb.mu.Lock()
	if tb.closed {
		tb.mu.Unlock()
		return 0, time.Time{}, ErrClosed
	}
	tb.nextID++
	id := tb.nextID
	l := &lease{expiry: tb.cfg.Now().Add(ttl), timers: make(map[uint64]struct{})}
	tb.leases[id] = l
	tb.granted++
	tb.mu.Unlock()

	if err := tb.watch(id, l, ttl); err != nil {
		tb.mu.Lock()
		delete(tb.leases, id)
		tb.granted--
		tb.mu.Unlock()
		return 0, time.Time{}, err
	}
	return id, l.expiry, nil
}

// Restore recreates a lease recovered from the WAL with its original ID
// and absolute expiry (which may already be in the past — the watchdog
// then fires on the next tick and expires it through the normal path,
// logging the expiry exactly as if the daemon had stayed up). nextID
// advances past id so future grants never collide.
func (tb *Table) Restore(id uint64, expiry time.Time, timers []uint64) error {
	tb.mu.Lock()
	if tb.closed {
		tb.mu.Unlock()
		return ErrClosed
	}
	if id > tb.nextID {
		tb.nextID = id
	}
	l := &lease{expiry: expiry, timers: make(map[uint64]struct{}, len(timers))}
	for _, t := range timers {
		l.timers[t] = struct{}{}
	}
	tb.leases[id] = l
	tb.granted++
	remain := expiry.Sub(tb.cfg.Now())
	tb.mu.Unlock()
	return tb.watch(id, l, remain)
}

// watch arms (or re-arms) the lease's watchdog. Called without tb.mu.
func (tb *Table) watch(id uint64, l *lease, d time.Duration) error {
	if d < 0 {
		d = 0
	}
	wd, err := tb.sched.AfterFunc(d, func() { tb.watchdog(id) })
	tb.mu.Lock()
	if err == nil && tb.leases[id] == l {
		l.wd = wd
		l.watching = true
	}
	tb.mu.Unlock()
	return err
}

// watchdog runs when a lease's armed TTL elapses. If a Renew moved the
// expiry past now, it re-arms for the remainder; otherwise the lease
// and its timer set leave the table and OnExpire is told.
func (tb *Table) watchdog(id uint64) {
	tb.mu.Lock()
	l, ok := tb.leases[id]
	if !ok || tb.closed {
		tb.mu.Unlock()
		return
	}
	now := tb.cfg.Now()
	if remain := l.expiry.Sub(now); remain > 0 {
		// Renewed since arming: chase the new expiry. watching stays
		// true across the re-arm so a concurrent Renew cannot double-arm;
		// a failed re-arm (runtime draining) leaves the lease unwatched
		// and the next Renew retries.
		tb.mu.Unlock()
		if err := tb.watch(id, l, remain); err != nil {
			tb.mu.Lock()
			if tb.leases[id] == l {
				l.watching = false
			}
			tb.mu.Unlock()
		}
		return
	}
	delete(tb.leases, id)
	tb.expired++
	ids := sortedIDs(l.timers)
	cb := tb.cfg.OnExpire
	tb.mu.Unlock()
	if cb != nil {
		cb(id, ids)
	}
}

// Renew moves the lease's expiry to now + clamped ttl. It returns the
// new expiry and whether the lease was alive. The armed watchdog is
// left alone — it discovers the new expiry when it fires.
func (tb *Table) Renew(id uint64, ttl time.Duration) (time.Time, bool) {
	ttl = tb.cfg.clamp(ttl)
	tb.mu.Lock()
	l, ok := tb.leases[id]
	if !ok || tb.closed {
		tb.mu.Unlock()
		return time.Time{}, false
	}
	l.expiry = tb.cfg.Now().Add(ttl)
	tb.renewed++
	rearm := !l.watching
	if rearm {
		l.watching = true // reserve; watch() confirms or the arm error path clears
	}
	expiry := l.expiry
	tb.mu.Unlock()
	if rearm {
		if err := tb.watch(id, l, ttl); err != nil {
			tb.mu.Lock()
			if tb.leases[id] == l {
				l.watching = false
			}
			tb.mu.Unlock()
		}
	}
	return expiry, true
}

// RevertExpiry undoes a renewal whose durability failed: if the lease
// is alive and its expiry is still cur — no later renewal interleaved —
// it moves back to old, so the in-memory lease agrees with what the log
// will replay. It reports whether the revert applied. The watchdog
// needs no adjustment: it re-reads the expiry when it fires.
func (tb *Table) RevertExpiry(id uint64, cur, old time.Time) bool {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	l, ok := tb.leases[id]
	if !ok || !l.expiry.Equal(cur) {
		return false
	}
	l.expiry = old
	return true
}

// Release ends a lease deliberately (client shutdown) and returns the
// sorted timer IDs it owned; the caller decides their fate. The armed
// watchdog is stopped best-effort; a missed stop finds no lease and
// no-ops.
func (tb *Table) Release(id uint64) ([]uint64, bool) {
	tb.mu.Lock()
	l, ok := tb.leases[id]
	if !ok {
		tb.mu.Unlock()
		return nil, false
	}
	delete(tb.leases, id)
	tb.released++
	ids := sortedIDs(l.timers)
	wd := l.wd
	tb.mu.Unlock()
	if wd != nil {
		wd.Stop()
	}
	return ids, true
}

// Attach records that the lease owns timer tid. It reports whether the
// lease was alive; a false return means the caller should treat the
// session as gone.
func (tb *Table) Attach(id, tid uint64) bool {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	l, ok := tb.leases[id]
	if !ok {
		return false
	}
	l.timers[tid] = struct{}{}
	return true
}

// Detach forgets timer tid (fired or cancelled) from the lease.
func (tb *Table) Detach(id, tid uint64) {
	tb.mu.Lock()
	if l, ok := tb.leases[id]; ok {
		delete(l.timers, tid)
	}
	tb.mu.Unlock()
}

// Expiry returns the lease's current expiry instant.
func (tb *Table) Expiry(id uint64) (time.Time, bool) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	l, ok := tb.leases[id]
	if !ok {
		return time.Time{}, false
	}
	return l.expiry, true
}

// Stats returns the table's counter snapshot.
func (tb *Table) Stats() Stats {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	return Stats{
		Active:   len(tb.leases),
		Granted:  tb.granted,
		Renewed:  tb.renewed,
		Expired:  tb.expired,
		Released: tb.released,
	}
}

// Snapshot returns every live lease as (id, expiry, owned timers) — the
// records the daemon folds into a WAL snapshot.
func (tb *Table) Snapshot() []SnapshotEntry {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	out := make([]SnapshotEntry, 0, len(tb.leases))
	for id, l := range tb.leases {
		out = append(out, SnapshotEntry{ID: id, Expiry: l.expiry, Timers: sortedIDs(l.timers)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SnapshotEntry is one live lease in a Snapshot.
type SnapshotEntry struct {
	ID     uint64
	Expiry time.Time
	Timers []uint64
}

// Close stops the table: watchdogs that fire afterwards no-op, and
// every mutating call fails. It does not expire anything — shutdown is
// not client death.
func (tb *Table) Close() {
	tb.mu.Lock()
	tb.closed = true
	wds := make([]*timer.Timer, 0, len(tb.leases))
	for _, l := range tb.leases {
		if l.wd != nil {
			wds = append(wds, l.wd)
		}
	}
	tb.mu.Unlock()
	for _, wd := range wds {
		wd.Stop()
	}
}

func sortedIDs(m map[uint64]struct{}) []uint64 {
	ids := make([]uint64, 0, len(m))
	for t := range m {
		ids = append(ids, t)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
