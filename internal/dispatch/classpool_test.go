package dispatch

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"timingwheels/internal/overload"
)

func TestClassPoolRunsEverythingAdmitted(t *testing.T) {
	var sum atomic.Int64
	p := NewClass(4, 16, func(v int, _ overload.Class) { sum.Add(int64(v)) })
	// Later submissions carry later deadlines, so a full queue evicts an
	// older same-class item to admit the newcomer: the expected sum is
	// admissions minus evictions.
	want := int64(0)
	for i := 1; i <= 100; i++ {
		admitted, victim, _, evicted := p.Submit(i, overload.Normal, int64(i))
		if admitted {
			want += int64(i)
		}
		if evicted {
			want -= int64(victim)
		}
	}
	p.Close()
	if sum.Load() != want {
		t.Fatalf("sum=%d want %d", sum.Load(), want)
	}
	if p.Executed() == 0 {
		t.Fatal("nothing executed")
	}
}

func TestClassPoolEvictsWeakerWorkWhenFull(t *testing.T) {
	gate := make(chan struct{})
	var mu sync.Mutex
	var ran []int
	p := NewClass(1, 2, func(v int, _ overload.Class) {
		<-gate
		mu.Lock()
		ran = append(ran, v)
		mu.Unlock()
	})
	defer p.Close()
	defer close(gate)
	// Occupy the single worker, then fill the queue with best-effort.
	p.Submit(0, overload.BestEffort, 0)
	for !func() bool { return p.QueueLen() == 0 }() {
		time.Sleep(time.Millisecond)
	}
	p.Submit(1, overload.BestEffort, 1)
	p.Submit(2, overload.BestEffort, 2)
	// A Critical submission evicts the most overdue best-effort item.
	admitted, victim, vc, evicted := p.Submit(3, overload.Critical, 3)
	if !admitted || !evicted || victim != 1 || vc != overload.BestEffort {
		t.Fatalf("admitted=%v evicted=%v victim=%d class=%v", admitted, evicted, victim, vc)
	}
	// A second Critical evicts the remaining best-effort item; a third
	// finds only Critical queued and is refused.
	if admitted, _, _, _ := p.Submit(4, overload.Critical, 4); !admitted {
		t.Fatal("second critical not admitted")
	}
	if admitted, _, _, evicted := p.Submit(5, overload.Critical, 5); admitted || evicted {
		t.Fatalf("third critical: admitted=%v evicted=%v, want refusal", admitted, evicted)
	}
}

func TestClassPoolCloseDrainsQueued(t *testing.T) {
	gate := make(chan struct{})
	var ran atomic.Int64
	first := make(chan struct{})
	var once sync.Once
	p := NewClass(1, 8, func(v int, _ overload.Class) {
		once.Do(func() { close(first) })
		<-gate
		ran.Add(1)
	})
	p.Submit(0, overload.Normal, 0)
	<-first // worker busy; the rest queue up
	for i := 1; i <= 4; i++ {
		if admitted, _, _, _ := p.Submit(i, overload.Normal, int64(i)); !admitted {
			t.Fatalf("submit %d refused with queue space free", i)
		}
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(gate)
	}()
	p.Close()
	if ran.Load() != 5 {
		t.Fatalf("Close returned with %d/5 tasks run", ran.Load())
	}
	if admitted, _, _, _ := p.Submit(9, overload.Critical, 9); admitted {
		t.Fatal("Submit after Close admitted")
	}
}

func TestClassPoolPanicIsolated(t *testing.T) {
	p := NewClass(1, 4, func(v int, _ overload.Class) {
		if v == 1 {
			panic("bad task")
		}
	})
	p.Submit(1, overload.Normal, 1)
	p.Submit(2, overload.Normal, 2)
	p.Close()
	if p.Panics() != 1 || p.Executed() != 2 {
		t.Fatalf("panics=%d executed=%d", p.Panics(), p.Executed())
	}
}
