package dispatch

import (
	"sync"
	"sync/atomic"

	"timingwheels/internal/overload"
)

// ClassPool is the priority-aware sibling of Pool: submitted items carry
// an overload.Class and a deadline, the queue is an overload.Rings, and
// a full queue evicts the weakest, most-overdue waiting item instead of
// refusing the newcomer outright. Workers drain in strict class order
// (Critical first), FIFO within a class.
//
// Unlike Pool's channel queue, the rings live under the pool mutex with
// a condition variable waking workers — eviction from the middle of a
// queue is impossible with a channel. Submission and eviction decisions
// are made atomically under the lock, so a single-threaded submitter
// (the timer runtime's driver goroutine) observes fully deterministic
// shed decisions for a given submission/completion interleaving.
type ClassPool[T any] struct {
	mu     sync.Mutex
	cond   sync.Cond
	q      *overload.Rings[T]
	runner func(T, overload.Class)
	closed bool
	wg     sync.WaitGroup

	executed atomic.Uint64
	panics   atomic.Uint64
}

// NewClass starts a class-aware pool with the given number of workers
// (clamped to >= 1) and total queue capacity across all classes
// (clamped to >= 1). Every admitted item is eventually passed to run on
// some worker goroutine, with the class it was submitted under.
func NewClass[T any](workers, queue int, run func(T, overload.Class)) *ClassPool[T] {
	if workers < 1 {
		workers = 1
	}
	p := &ClassPool[T]{q: overload.NewRings[T](queue), runner: run}
	p.cond.L = &p.mu
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *ClassPool[T]) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for p.q.Len() == 0 && !p.closed {
			p.cond.Wait()
		}
		v, c, ok := p.q.Pop()
		p.mu.Unlock()
		if !ok {
			return // closed and drained
		}
		p.run(v, c)
	}
}

// run executes one item, isolating panics so a misbehaving task never
// kills a worker.
func (p *ClassPool[T]) run(v T, c overload.Class) {
	defer func() {
		if recover() != nil {
			p.panics.Add(1)
		}
		p.executed.Add(1)
	}()
	p.runner(v, c)
}

// Submit offers v at the given class and deadline. The return values
// mirror overload.Rings.Push:
//
//   - admitted reports whether v was queued (false on a closed pool, or
//     when v itself was the weakest candidate — the caller sheds v, or
//     runs it inline if its class forbids shedding);
//   - when evicted is true, victim (of victimClass) was displaced to
//     admit v, and the caller now owns shedding it.
//
// Submit never blocks and never runs the item on the caller.
func (p *ClassPool[T]) Submit(v T, c overload.Class, deadline int64) (admitted bool, victim T, victimClass overload.Class, evicted bool) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return false, victim, 0, false
	}
	admitted, victim, victimClass, evicted = p.q.Push(v, c, deadline)
	if admitted {
		p.cond.Signal()
	}
	p.mu.Unlock()
	return admitted, victim, victimClass, evicted
}

// Close stops intake, runs every already-queued item to completion, and
// waits for the workers to exit. Idempotent and safe to call
// concurrently; every call blocks until the pool is fully drained. Close
// must not be called from inside a task.
func (p *ClassPool[T]) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		p.cond.Broadcast()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// Executed reports how many items workers have finished (including ones
// that panicked).
func (p *ClassPool[T]) Executed() uint64 { return p.executed.Load() }

// Panics reports how many items panicked and were recovered.
func (p *ClassPool[T]) Panics() uint64 { return p.panics.Load() }

// QueueLen reports the number of items waiting for a worker.
func (p *ClassPool[T]) QueueLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.q.Len()
}

// QueueCap reports the total queue capacity.
func (p *ClassPool[T]) QueueCap() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.q.Cap()
}
