// Package dispatch provides a bounded worker pool for expiry-action
// dispatch with explicit overload shedding.
//
// The paper keeps PER_TICK_BOOKKEEPING O(1) but says nothing about
// EXPIRY_PROCESSING taking arbitrary time; in a production facility one
// slow expiry action on the ticking goroutine delays every later timer.
// A Pool moves actions onto a fixed set of workers behind a bounded
// queue: when the queue is full the submission fails immediately instead
// of blocking the tick path or buffering without bound — the caller
// decides what shedding means (the timer runtime counts the drop and
// moves on).
//
// The pool is generic over the queued item type with a single runner
// function fixed at construction. Submitting a plain value (typically a
// pointer to the caller's own timer record) therefore allocates nothing,
// where a chan func() design would force the submitter to allocate a
// capturing closure per dispatch.
package dispatch

import (
	"sync"
	"sync/atomic"
)

// Pool runs submitted items through a fixed runner on a fixed number of
// worker goroutines behind a bounded queue. The zero value is not
// usable; construct with New.
type Pool[T any] struct {
	mu     sync.Mutex
	tasks  chan T
	runner func(T)
	closed bool
	wg     sync.WaitGroup

	executed atomic.Uint64
	panics   atomic.Uint64
}

// New starts a pool with the given number of workers (clamped to >= 1)
// and queue capacity (clamped to >= 0; zero means a submission succeeds
// only when a worker is ready to take it immediately). Every submitted
// item is passed to run on some worker goroutine.
func New[T any](workers, queue int, run func(T)) *Pool[T] {
	if workers < 1 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	p := &Pool[T]{tasks: make(chan T, queue), runner: run}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for v := range p.tasks {
				p.run(v)
			}
		}()
	}
	return p
}

// run executes one item, isolating panics so a misbehaving task never
// kills a worker (the timer runtime wraps its callbacks with its own
// recovery; this is the pool's backstop for direct users).
func (p *Pool[T]) run(v T) {
	defer func() {
		if recover() != nil {
			p.panics.Add(1)
		}
		p.executed.Add(1)
	}()
	p.runner(v)
}

// TrySubmit enqueues v, reporting false — without blocking — when the
// queue is full or the pool is closed. A false return is the overload
// signal: the caller sheds the work explicitly rather than stalling.
func (p *Pool[T]) TrySubmit(v T) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.tasks <- v:
		return true
	default:
		return false
	}
}

// Close stops intake, runs every already-queued task to completion, and
// waits for the workers to exit. It is idempotent and safe to call
// concurrently; every call blocks until the pool is fully drained. Close
// must not be called from inside a task (the task would wait on its own
// worker).
func (p *Pool[T]) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// Executed reports how many tasks workers have finished (including ones
// that panicked).
func (p *Pool[T]) Executed() uint64 { return p.executed.Load() }

// Panics reports how many tasks panicked and were recovered.
func (p *Pool[T]) Panics() uint64 { return p.panics.Load() }

// QueueLen reports the number of tasks waiting for a worker.
func (p *Pool[T]) QueueLen() int { return len(p.tasks) }

// QueueCap reports the queue capacity.
func (p *Pool[T]) QueueCap() int { return cap(p.tasks) }
