package dispatch

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsTasks(t *testing.T) {
	p := New(2, 8, func(fn func()) { fn() })
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		for !p.TrySubmit(func() { n.Add(1); wg.Done() }) {
			time.Sleep(time.Millisecond) // queue full: wait and retry
		}
	}
	wg.Wait()
	if n.Load() != 20 {
		t.Fatalf("ran %d tasks, want 20", n.Load())
	}
	p.Close()
	if p.Executed() != 20 {
		t.Fatalf("Executed=%d", p.Executed())
	}
}

func TestTrySubmitShedsWhenFull(t *testing.T) {
	p := New(1, 1, func(fn func()) { fn() })
	gate := make(chan struct{})
	running := make(chan struct{})
	if !p.TrySubmit(func() { close(running); <-gate }) {
		t.Fatal("first submit should succeed")
	}
	<-running // worker is now busy; queue is empty
	if !p.TrySubmit(func() {}) {
		t.Fatal("second submit should land in the queue")
	}
	if p.TrySubmit(func() { t.Error("shed task ran") }) {
		t.Fatal("third submit should be shed: queue full")
	}
	if p.QueueLen() != 1 || p.QueueCap() != 1 {
		t.Fatalf("queue %d/%d", p.QueueLen(), p.QueueCap())
	}
	close(gate)
	p.Close()
	if p.Executed() != 2 {
		t.Fatalf("Executed=%d, want 2", p.Executed())
	}
}

func TestCloseDrainsQueueAndIsIdempotent(t *testing.T) {
	p := New(1, 4, func(fn func()) { fn() })
	gate := make(chan struct{})
	running := make(chan struct{})
	var n atomic.Int64
	p.TrySubmit(func() { close(running); <-gate; n.Add(1) })
	<-running
	for i := 0; i < 3; i++ {
		if !p.TrySubmit(func() { n.Add(1) }) {
			t.Fatal("queue should accept while worker is busy")
		}
	}
	done := make(chan struct{})
	go func() { p.Close(); close(done) }()
	select {
	case <-done:
		t.Fatal("Close returned before queued tasks finished")
	case <-time.After(20 * time.Millisecond):
	}
	close(gate)
	<-done
	if n.Load() != 4 {
		t.Fatalf("drained %d tasks, want 4", n.Load())
	}
	p.Close() // idempotent
	if p.TrySubmit(func() { t.Error("task ran after Close") }) {
		t.Fatal("TrySubmit after Close should fail")
	}
}

func TestPanicIsolation(t *testing.T) {
	p := New(1, 2, func(fn func()) { fn() })
	var after atomic.Bool
	p.TrySubmit(func() { panic("boom") })
	p.TrySubmit(func() { after.Store(true) })
	p.Close()
	if !after.Load() {
		t.Fatal("worker died on panic: later task never ran")
	}
	if p.Panics() != 1 || p.Executed() != 2 {
		t.Fatalf("panics=%d executed=%d", p.Panics(), p.Executed())
	}
}

func TestClampedConstruction(t *testing.T) {
	p := New(0, -5, func(fn func()) { fn() }) // clamps to 1 worker, 0 queue
	done := make(chan struct{})
	// With a zero-capacity queue, submission succeeds once the worker is
	// parked on the channel receive.
	for !p.TrySubmit(func() { close(done) }) {
		time.Sleep(time.Millisecond)
	}
	<-done
	p.Close()
}
