package overload

import (
	"fmt"
	"testing"
)

func TestPushWithinBudgetAdmits(t *testing.T) {
	q := NewRings[int](3)
	for i := 0; i < 3; i++ {
		pushed, _, _, evicted := q.Push(i, BestEffort, int64(i))
		if !pushed || evicted {
			t.Fatalf("push %d: pushed=%v evicted=%v", i, pushed, evicted)
		}
	}
	if q.Len() != 3 || q.LenClass(BestEffort) != 3 {
		t.Fatalf("Len=%d LenClass=%d", q.Len(), q.LenClass(BestEffort))
	}
}

func TestPopStrictPriorityThenFIFO(t *testing.T) {
	q := NewRings[string](8)
	q.Push("b1", BestEffort, 1)
	q.Push("c1", Critical, 2)
	q.Push("n1", Normal, 3)
	q.Push("c2", Critical, 4)
	q.Push("n2", Normal, 5)
	want := []string{"c1", "c2", "n1", "n2", "b1"}
	for _, w := range want {
		v, _, ok := q.Pop()
		if !ok || v != w {
			t.Fatalf("Pop=%q ok=%v, want %q", v, ok, w)
		}
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue reported ok")
	}
}

func TestFullQueueEvictsWeakestMostOverdue(t *testing.T) {
	q := NewRings[string](3)
	q.Push("b-overdue", BestEffort, 5)
	q.Push("b-fresh", BestEffort, 100)
	q.Push("n", Normal, 50)
	// A Normal newcomer outranks the BestEffort ring: the most overdue
	// BestEffort entry goes, regardless of the newcomer's deadline.
	pushed, victim, vc, evicted := q.Push("n2", Normal, 1)
	if !pushed || !evicted || victim != "b-overdue" || vc != BestEffort {
		t.Fatalf("pushed=%v evicted=%v victim=%q class=%v", pushed, evicted, victim, vc)
	}
}

func TestFullQueueSameClassComparesDeadlines(t *testing.T) {
	q := NewRings[string](2)
	q.Push("overdue", Normal, 10)
	q.Push("fresh", Normal, 90)
	// Newcomer with a later deadline than the most overdue entry wins
	// its slot.
	pushed, victim, _, evicted := q.Push("newcomer", Normal, 40)
	if !pushed || !evicted || victim != "overdue" {
		t.Fatalf("pushed=%v evicted=%v victim=%q", pushed, evicted, victim)
	}
	// Newcomer more overdue than everything queued is itself refused.
	pushed, _, _, evicted = q.Push("ancient", Normal, 1)
	if pushed || evicted {
		t.Fatalf("ancient newcomer: pushed=%v evicted=%v, want refusal", pushed, evicted)
	}
	// Ties refuse the newcomer.
	pushed, _, _, _ = q.Push("tie", Normal, 40)
	if pushed {
		t.Fatal("tie newcomer admitted; want refusal")
	}
}

func TestCriticalNeverEvicted(t *testing.T) {
	q := NewRings[string](2)
	q.Push("c1", Critical, 1)
	q.Push("c2", Critical, 2)
	// Even a Critical newcomer cannot displace queued Critical work.
	pushed, _, _, evicted := q.Push("c3", Critical, 100)
	if pushed || evicted {
		t.Fatalf("critical-on-critical: pushed=%v evicted=%v", pushed, evicted)
	}
	// Weaker newcomers are refused outright.
	pushed, _, _, evicted = q.Push("n", Normal, 100)
	if pushed || evicted {
		t.Fatalf("normal vs critical queue: pushed=%v evicted=%v", pushed, evicted)
	}
}

func TestLowerClassNewcomerRefused(t *testing.T) {
	q := NewRings[string](2)
	q.Push("n1", Normal, 1)
	q.Push("n2", Normal, 2)
	pushed, _, _, evicted := q.Push("b", BestEffort, 1000)
	if pushed || evicted {
		t.Fatalf("best-effort vs normal queue: pushed=%v evicted=%v", pushed, evicted)
	}
}

// TestRingWrapAndGrowth exercises the circular buffer through many
// interleaved push/pop cycles so head wrapping and growth both happen.
func TestRingWrapAndGrowth(t *testing.T) {
	q := NewRings[int](256)
	next, popped := 0, 0
	for round := 0; round < 200; round++ {
		for i := 0; i < 3; i++ {
			if pushed, _, _, _ := q.Push(next, Normal, int64(next)); !pushed {
				t.Fatalf("round %d: push refused below capacity", round)
			}
			next++
		}
		for i := 0; i < 2; i++ {
			v, _, ok := q.Pop()
			if !ok || v != popped {
				t.Fatalf("round %d: Pop=%d ok=%v, want %d (FIFO)", round, v, ok, popped)
			}
			popped++
		}
	}
	if q.Len() != next-popped {
		t.Fatalf("Len=%d, want %d", q.Len(), next-popped)
	}
}

// TestDeterministicReplay sheds the identical victim set for a replayed
// mixed trace — the property the runtime's overload soak depends on.
func TestDeterministicReplay(t *testing.T) {
	run := func() []string {
		q := NewRings[int](8)
		var shed []string
		rng := uint64(0x5EED)
		for i := 0; i < 500; i++ {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			c := Class(rng % 3)
			deadline := int64(rng % 97)
			pushed, victim, vc, evicted := q.Push(i, c, deadline)
			if evicted {
				shed = append(shed, fmt.Sprintf("evict:%d/%v", victim, vc))
			} else if !pushed {
				shed = append(shed, fmt.Sprintf("refuse:%d/%v", i, c))
			}
			if rng%5 == 0 {
				q.Pop()
			}
		}
		return shed
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("trace shed nothing; not exercising eviction")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("replayed trace shed a different set:\n%v\n%v", a, b)
	}
}
