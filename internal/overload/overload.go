// Package overload implements the degradation policy a timer facility
// applies when expiry processing cannot keep up with expiries.
//
// The paper keeps PER_TICK_BOOKKEEPING O(1) so the facility itself never
// melts under "timers outstanding in the thousands"; what can melt is
// EXPIRY_PROCESSING — a bounded dispatch pool fills and something must
// be dropped. Indiscriminate shed-on-full drops whichever expiry happens
// to arrive last, which is the worst possible policy for a production
// service: a connection keep-alive is discarded to protect a metrics
// flush. This package makes the drop decision explicit and deterministic:
//
//   - Expiries carry a Class (Critical / Normal / BestEffort).
//   - A Rings queue holds waiting expiries in per-class FIFO rings under
//     one total capacity budget.
//   - When the budget is exhausted, the victim is the lowest-class,
//     farthest-past-deadline waiting expiry — never a Critical one. If
//     the newcomer itself is the weakest candidate, the newcomer is
//     refused instead of evicting anything.
//
// Rings is not safe for concurrent use; the dispatch pool serializes
// access under its own lock. Eviction is a pure function of the
// submission/pop sequence, so a replayed trace sheds the identical set —
// the property the runtime's seeded overload soak asserts.
package overload

import "fmt"

// Class is an expiry's drop-priority under overload. Higher values are
// more important. The zero value is BestEffort so that an uninitialized
// class never silently outranks real traffic.
type Class uint8

// Priority classes, weakest first.
const (
	// BestEffort expiries are shed first and never retried.
	BestEffort Class = iota
	// Normal expiries are shed only when no BestEffort work remains to
	// evict, and are eligible for retry with backoff.
	Normal
	// Critical expiries are never shed from the queue: when one cannot
	// be admitted even by evicting weaker work, the submitter must run
	// it inline instead.
	Critical
	// NumClasses is the number of priority classes.
	NumClasses = int(Critical) + 1
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case BestEffort:
		return "best-effort"
	case Normal:
		return "normal"
	case Critical:
		return "critical"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// entry is one queued expiry: the caller's value plus the deadline used
// to pick eviction victims (smaller = longer past due = shed first).
type entry[T any] struct {
	v        T
	deadline int64
}

// ring is a FIFO of entries backed by a circular buffer that grows up to
// the parent's capacity budget.
type ring[T any] struct {
	buf  []entry[T]
	head int
	n    int
}

func (r *ring[T]) push(e entry[T]) {
	if r.n == len(r.buf) {
		grown := make([]entry[T], maxInt(4, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = e
	r.n++
}

func (r *ring[T]) pop() entry[T] {
	e := r.buf[r.head]
	r.buf[r.head] = entry[T]{} // drop the reference for the GC
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return e
}

// at returns the i-th entry in FIFO order (0 = oldest).
func (r *ring[T]) at(i int) entry[T] { return r.buf[(r.head+i)%len(r.buf)] }

// removeAt deletes the i-th entry (FIFO order), preserving the order of
// the rest. O(n) in the ring's length; eviction is the overload slow
// path, never the admit fast path.
func (r *ring[T]) removeAt(i int) entry[T] {
	e := r.at(i)
	for j := i; j < r.n-1; j++ {
		r.buf[(r.head+j)%len(r.buf)] = r.buf[(r.head+j+1)%len(r.buf)]
	}
	r.buf[(r.head+r.n-1)%len(r.buf)] = entry[T]{}
	r.n--
	return e
}

// Rings is the bounded multi-class queue behind a dispatch pool: one
// FIFO ring per Class under a single total-capacity budget, with
// deadline-aware eviction on overflow. The zero value is not usable;
// construct with NewRings.
type Rings[T any] struct {
	rings [NumClasses]ring[T]
	cap   int
	n     int
}

// NewRings returns a queue holding at most capacity entries across all
// classes (clamped to >= 1).
func NewRings[T any](capacity int) *Rings[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Rings[T]{cap: capacity}
}

// Len reports the number of queued entries across all classes.
func (q *Rings[T]) Len() int { return q.n }

// Cap reports the total capacity budget.
func (q *Rings[T]) Cap() int { return q.cap }

// LenClass reports the number of queued entries of one class.
func (q *Rings[T]) LenClass(c Class) int { return q.rings[c].n }

// Push offers v for admission. When the queue is full it applies the
// shed policy: the victim is the weakest-class, farthest-past-deadline
// entry among the queued entries and the newcomer (Critical entries are
// never victims). Exactly one of three things happens:
//
//   - admitted, no eviction: pushed == true, evicted == false;
//   - admitted by evicting a weaker/staler entry: pushed == true,
//     evicted == true, victim/victimClass identify the dropped entry;
//   - refused (the newcomer is the weakest candidate, or everything
//     queued is Critical): pushed == false.
//
// Deadlines are compared numerically: a smaller deadline is further in
// the past, hence a better victim — the expiry that is already latest
// gains the least from still running.
func (q *Rings[T]) Push(v T, c Class, deadline int64) (pushed bool, victim T, victimClass Class, evicted bool) {
	if q.n < q.cap {
		q.rings[c].push(entry[T]{v: v, deadline: deadline})
		q.n++
		return true, victim, 0, false
	}
	// Full: find the weakest non-empty class, excluding Critical.
	vc := Class(0)
	found := false
	for cc := BestEffort; cc < Critical; cc++ {
		if q.rings[cc].n > 0 {
			vc, found = cc, true
			break
		}
	}
	if !found || c < vc {
		// Everything queued outranks the newcomer (or is Critical):
		// the newcomer is the shed.
		return false, victim, 0, false
	}
	if c == vc {
		// Same class: the farthest-past-deadline of {queued, newcomer}
		// goes. Ties refuse the newcomer — no churn for equal claims.
		min := q.minDeadlineIndex(vc)
		if deadline <= q.rings[vc].at(min).deadline {
			return false, victim, 0, false
		}
		e := q.rings[vc].removeAt(min)
		q.rings[c].push(entry[T]{v: v, deadline: deadline})
		return true, e.v, vc, true
	}
	// The newcomer outranks the whole victim class: evict its most
	// overdue entry unconditionally.
	e := q.rings[vc].removeAt(q.minDeadlineIndex(vc))
	q.rings[c].push(entry[T]{v: v, deadline: deadline})
	return true, e.v, vc, true
}

// minDeadlineIndex returns the FIFO index of the smallest-deadline entry
// of class c (first such entry on ties, for determinism). The ring must
// be non-empty.
func (q *Rings[T]) minDeadlineIndex(c Class) int {
	r := &q.rings[c]
	best := 0
	for i := 1; i < r.n; i++ {
		if r.at(i).deadline < r.at(best).deadline {
			best = i
		}
	}
	return best
}

// Pop removes and returns the next entry to run: strict priority order
// (Critical before Normal before BestEffort), FIFO within a class. ok is
// false when the queue is empty. Strict priority cannot starve forever:
// the queue is bounded and fed by a tick-paced driver, so weaker classes
// drain whenever a tick's strong work fits the worker budget.
func (q *Rings[T]) Pop() (v T, c Class, ok bool) {
	for cc := Critical; ; cc-- {
		if q.rings[cc].n > 0 {
			e := q.rings[cc].pop()
			q.n--
			return e.v, cc, true
		}
		if cc == BestEffort {
			return v, 0, false
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
